package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/tegra"
)

// fakeClock is a hand-advanced time source for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// newProbeTestServer builds a single-device server whose breaker trips
// on the first failure and whose clock the test controls.
func newProbeTestServer(t *testing.T, clk *fakeClock) *Server {
	t.Helper()
	cal, err := FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	return New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Clock:            clk.now,
	})
}

// TestProbeSlotReleasedOnCancelledSweep is the probe-leak regression
// test for /v1/autotune: a half-open breaker grants its single probe
// slot to a request whose client then hangs up. The cancellation
// carries no health signal, but the slot must still come back — before
// the fix it stayed taken forever, so the breaker could never again
// admit the probe that would have reclosed it.
func TestProbeSlotReleasedOnCancelledSweep(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	s := newProbeTestServer(t, clk)
	h := s.Handler()
	body := `{"profile": {"sp": 5e8}, "occupancy": 0.5, "timeout_s": 1e-12}`

	// One sweep deadline trips the threshold-1 breaker open.
	if w := postJSON(t, h, "/v1/autotune", body); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("doomed sweep = %d, want 504", w.Code)
	}
	if state, _ := node0(s).Breaker.Snapshot(); state != fleet.BreakerOpen {
		t.Fatalf("breaker %v after failure, want open", state)
	}

	// Past the cooldown the breaker goes half-open; the next request
	// takes the probe slot but its client has already disconnected.
	clk.advance(2 * time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/autotune",
		strings.NewReader(`{"profile": {"sp": 5e8}, "occupancy": 0.5}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled probe request = %d, want 503", w.Code)
	}

	// The slot must be free again: Allow grants the next probe instead
	// of reporting a phantom probe still in flight.
	if !node0(s).Breaker.Allow() {
		t.Fatal("probe slot leaked: Allow refuses after the cancelled request returned")
	}
	node0(s).Breaker.Release()
}

// testFleet builds an n-clone fleet with test-controlled breakers and
// clock, in-package so tests can reach the nodes directly.
func testFleet(t *testing.T, n int, opts Options) *Server {
	t.Helper()
	cal, err := FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}[:n]
	nodes := make([]*fleet.Node, n)
	for i, id := range ids {
		nodes[i] = fleet.NewNode(id, tegra.NewDevice(), cal,
			experiments.Config{Seed: 42}, node0(newTestServer(t)).Grids, opts.NodeOptions())
	}
	reg, err := fleet.NewRegistry(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewFleet(reg, opts)
}

// TestFleetPlaceReleasesProbesOnCancel covers the same leak on the
// placement path: a cancelled /v1/fleet/place had taken every target
// device's half-open probe slot and returned without settling any of
// them, wedging the whole fleet's breakers shut.
func TestFleetPlaceReleasesProbesOnCancel(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	s := testFleet(t, 3, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Clock:            clk.now,
	})
	h := s.Handler()

	// Trip every breaker, then move past the cooldown so each is one
	// Allow away from half-open.
	for _, n := range s.reg.Nodes() {
		n.Breaker.Failure()
		if state, _ := n.Breaker.Snapshot(); state != fleet.BreakerOpen {
			t.Fatalf("device %s breaker %v, want open", n.ID, state)
		}
	}
	clk.advance(2 * time.Minute)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/fleet/place",
		strings.NewReader(`{"profile": {"sp": 5e8}, "occupancy": 0.5}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled place = %d, want 503", w.Code)
	}
	for _, n := range s.reg.Nodes() {
		if !n.Breaker.Allow() {
			t.Errorf("device %s probe slot leaked after cancelled place", n.ID)
		}
		n.Breaker.Release()
	}
}

// TestFleetPredictLeastLoaded exercises the ?route= selector: the
// default stays the consistent-hash home regardless of load, while
// least_loaded sheds onto the idlest device; unknown policies are 400s.
func TestFleetPredictLeastLoaded(t *testing.T) {
	s := testFleet(t, 3, Options{})
	h := s.Handler()
	body := `{"profile": {"sp": 2e8, "dram_words": 1e7}, "setting_id": "max"}`

	var req FleetPredictRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	home := s.reg.Route(predictKey(req.PredictRequest))

	// Load every node except one non-home device, which least_loaded
	// must then pick while the hash route stays put.
	var idle *fleet.Node
	for _, n := range s.reg.Nodes() {
		if n.ID != home.ID && idle == nil {
			idle = n
			continue
		}
		release := n.Acquire()
		defer release()
	}

	w := postJSON(t, h, "/v1/fleet/predict", body)
	if w.Code != http.StatusOK {
		t.Fatalf("hash-routed predict = %d: %s", w.Code, w.Body)
	}
	if dev := w.Header().Get("X-Energyd-Device"); dev != home.ID {
		t.Errorf("default route served by %s, want hash home %s under load", dev, home.ID)
	}

	w = postJSON(t, h, "/v1/fleet/predict?route=least_loaded", body)
	if w.Code != http.StatusOK {
		t.Fatalf("least_loaded predict = %d: %s", w.Code, w.Body)
	}
	if dev := w.Header().Get("X-Energyd-Device"); dev != idle.ID {
		t.Errorf("least_loaded served by %s, want idle %s", dev, idle.ID)
	}

	if w := postJSON(t, h, "/v1/fleet/predict?route=weighted", body); w.Code != http.StatusBadRequest {
		t.Errorf("unknown route = %d, want 400", w.Code)
	}
}

// TestStatsSnapshotEndpoint drives one miss and one hit through the
// autotune path and checks that GET /v1/stats reports both, along with
// non-zero energy ledgers and per-endpoint status counts — without the
// stats read itself moving any counter.
func TestStatsSnapshotEndpoint(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	body := `{"profile": {"dp_fma": 2e8, "int": 1e8, "dram_words": 5e7}, "occupancy": 0.9}`
	for i := 0; i < 2; i++ {
		if w := postJSON(t, h, "/v1/autotune", body); w.Code != http.StatusOK {
			t.Fatalf("autotune %d = %d: %s", i, w.Code, w.Body)
		}
	}

	if w := postJSON(t, h, "/v1/stats", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats = %d, want 405", w.Code)
	}
	first := getPath(t, h, "/v1/stats")
	if first.Code != http.StatusOK {
		t.Fatalf("/v1/stats = %d: %s", first.Code, first.Body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(first.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Devices) != 1 {
		t.Fatalf("stats devices = %d, want 1", len(stats.Devices))
	}
	d := stats.Devices[0]
	if d.CacheHits != 1 || d.CacheMisses != 1 {
		t.Errorf("cache counters = %d hits / %d misses, want 1/1", d.CacheHits, d.CacheMisses)
	}
	if d.Breaker != "closed" || d.BreakerOpens != 0 {
		t.Errorf("breaker = %s/%d opens, want closed/0", d.Breaker, d.BreakerOpens)
	}
	if d.SweepJ <= 0 || d.AnsweredJ <= 0 {
		t.Errorf("energy ledgers sweep=%g answered=%g, want both positive", d.SweepJ, d.AnsweredJ)
	}
	ep, ok := stats.Endpoints["/v1/autotune"]
	if !ok || ep.Requests != 2 || ep.ByCode["200"] != 2 {
		t.Errorf("autotune endpoint stats = %+v, want 2 requests all 200", ep)
	}
	if _, ok := stats.Endpoints["/v1/stats"]; ok {
		t.Error("/v1/stats instruments itself; reads must not move counters")
	}

	// Reading stats is side-effect free: a second read is byte-identical.
	if second := getPath(t, h, "/v1/stats"); second.Body.String() != first.Body.String() {
		t.Error("two consecutive /v1/stats reads differ; snapshot is not side-effect free")
	}
}
