package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// FleetPredictRequest is a predict request routed across the fleet.
// device pins the answer to one named device; otherwise the request's
// consistent hash picks its deterministic home.
type FleetPredictRequest struct {
	PredictRequest
	Device string `json:"device,omitempty"`
}

// FleetPredictResponse names the device whose simulator and calibration
// produced the embedded prediction.
type FleetPredictResponse struct {
	DeviceID string `json:"device_id"`
	PredictResponse
}

func (s *Server) handleFleetPredict(w http.ResponseWriter, r *http.Request) {
	var req FleetPredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// ?route= selects the placement policy: "hash" (the default) is the
	// consistent-hash home with its cache affinity and deterministic
	// answers; "least_loaded" sheds bursts onto the idlest device at the
	// cost of affinity. A pinned device overrides either.
	route := r.URL.Query().Get("route")
	switch route {
	case "", "hash", "least_loaded":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown route %q (want \"hash\" or \"least_loaded\")", route))
		return
	}
	var node *fleet.Node
	switch {
	case req.Device != "":
		n, ok := s.reg.Get(req.Device)
		if !ok {
			writeErrorDev(w, http.StatusNotFound, fmt.Sprintf("unknown device %q", req.Device), req.Device)
			return
		}
		if n.Cal() == nil {
			// Still calibrating after a runtime add: nothing to predict
			// with yet.
			writeErrorDev(w, http.StatusServiceUnavailable, fmt.Sprintf("device %q is still calibrating", req.Device), req.Device)
			return
		}
		node = n
	case route == "least_loaded":
		node = s.reg.LeastLoaded()
	default:
		node = s.reg.Route(predictKey(req.PredictRequest))
	}
	if node == nil {
		writeError(w, http.StatusServiceUnavailable, "no active device in the fleet")
		return
	}
	release := node.Acquire()
	defer release()
	resp, err := s.predictOn(node, req.PredictRequest)
	if err != nil {
		writeErrorDev(w, http.StatusBadRequest, err.Error(), node.ID)
		return
	}
	markDevice(w, node.ID)
	writeJSON(w, http.StatusOK, FleetPredictResponse{DeviceID: node.ID, PredictResponse: resp})
}

// DevicePlacement is one device's sweep outcome inside a /v1/fleet/place
// answer: the three §II-E picks over that device's own grid slice.
type DevicePlacement struct {
	DeviceID             string        `json:"device_id"`
	Candidates           int           `json:"candidates"`
	Model                PickJSON      `json:"model"`
	TimeOracle           PickJSON      `json:"time_oracle"`
	MeasuredMin          PickJSON      `json:"measured_min"`
	ModelExtraEnergyPct  units.Percent `json:"model_extra_energy_pct"`
	OracleExtraEnergyPct units.Percent `json:"oracle_extra_energy_pct"`
}

// PlaceSkip records a device that could not contribute to a placement
// and why (open breaker, sweep failure).
type PlaceSkip struct {
	DeviceID string `json:"device_id"`
	Reason   string `json:"reason"`
}

// PlaceResponse is the answer to a /v1/fleet/place request: every
// device's sweep outcome sorted by device ID, and the winner — the
// argmin of measured sweep energy across the fleet, ties broken by ID.
// The body carries no cache or degraded flags: a placement is a pure
// function of the workload and the fleet, so repeated calls return
// byte-identical answers.
type PlaceResponse struct {
	Grid       string            `json:"grid"`
	Devices    []DevicePlacement `json:"devices"`
	Skipped    []PlaceSkip       `json:"skipped,omitempty"`
	Winner     string            `json:"winner"`
	WinnerPick PickJSON          `json:"winner_pick"`
}

// handleFleetPlace answers "which device runs this workload cheapest,
// and at which DVFS setting?" It checks each device's sweep cache,
// shards the remaining devices' sweeps as (device, setting) units onto
// one worker pool (experiments.SweepTargets), deposits each device's
// share back into that device's cache, and feeds each device's breaker
// with its own outcome. Devices whose breaker rejects fresh work and
// whose cache has no entry are skipped, not failed — a placement over
// the surviving fleet is still useful, and the skip list says what it
// omits.
func (s *Server) handleFleetPlace(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	gridName := req.Grid
	if gridName == "" {
		gridName = "calibration"
	}
	wl := tegra.Workload{Profile: req.Profile.profile(), Occupancy: occupancyOrDefault(req.Occupancy)}
	if err := wl.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Placement considers active devices only: draining and quarantined
	// members keep their in-flight work but take no new sweeps.
	nodes := s.reg.Active()
	if len(nodes) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no active device in the fleet")
		return
	}
	if _, ok := nodes[0].Grids[gridName]; !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown grid %q (want \"calibration\" or \"full\")", gridName))
		return
	}

	timeout := s.timeout
	if req.TimeoutS > 0 && time.Duration(float64(req.TimeoutS)*float64(time.Second)) < timeout {
		timeout = time.Duration(float64(req.TimeoutS) * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Partition the fleet: cached devices answer immediately, healthy
	// uncached ones join the sharded sweep, open-breaker misses are
	// skipped.
	sweeps := make(map[string][]core.Candidate, len(nodes))
	var skips []PlaceSkip
	var targets []experiments.SweepTarget
	var targetNodes []*fleet.Node
	for _, n := range nodes {
		key := autotuneKey(gridName, wl, n.Cfg.Seed)
		if val, ok := n.Cache.Get(key); ok {
			s.metrics.cacheHit(n.ID)
			sweeps[n.ID] = val.([]core.Candidate)
			continue
		}
		if !n.Breaker.Allow() {
			skips = append(skips, PlaceSkip{DeviceID: n.ID, Reason: "sweep breaker open and no cached sweep"})
			continue
		}
		s.metrics.cacheMiss(n.ID)
		targets = append(targets, experiments.SweepTarget{Dev: n.Dev, Cfg: n.Cfg, Grid: n.Grids[gridName]})
		targetNodes = append(targetNodes, n)
	}
	if len(targets) > 0 {
		results, err := experiments.SweepTargets(ctx, nodes[0].Cfg, wl, targets)
		if err != nil {
			// Cancellation: no per-device outcome exists, so no breaker
			// signal either way — but every target passed Allow above
			// and may hold its breaker's half-open probe slot. Release
			// them all, or a cancelled place request would wedge every
			// half-open breaker it touched until the next cooldown.
			for _, n := range targetNodes {
				n.Breaker.Release()
			}
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "sweep deadline exceeded")
			case errors.Is(err, context.Canceled):
				writeError(w, http.StatusServiceUnavailable, "sweep cancelled")
			default:
				writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		for i, res := range results {
			n := targetNodes[i]
			if res.Err != nil {
				n.Breaker.Failure()
				skips = append(skips, PlaceSkip{DeviceID: n.ID, Reason: res.Err.Error()})
				continue
			}
			n.Breaker.Success()
			n.Cache.Put(autotuneKey(gridName, wl, n.Cfg.Seed), res.Candidates)
			sweeps[n.ID] = res.Candidates
			var sweep units.Joule
			for _, c := range res.Candidates {
				sweep += c.MeasuredEnergy
			}
			s.metrics.addSweepJoules(n.ID, float64(sweep))
			s.observeSweep(n, res.Candidates)
		}
	}
	if len(sweeps) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no device could sweep this workload")
		return
	}

	// Score per device and take the fleet argmin. Iterating nodes in
	// sorted-ID order makes the strict < tie-break deterministic.
	resp := PlaceResponse{Grid: gridName, Skipped: skips}
	winner := -1
	for _, n := range nodes {
		cands, ok := sweeps[n.ID]
		if !ok {
			continue
		}
		sc := scoreSweep(n.Cal().Model, gridName, cands)
		resp.Devices = append(resp.Devices, DevicePlacement{
			DeviceID:             n.ID,
			Candidates:           sc.Candidates,
			Model:                sc.Model,
			TimeOracle:           sc.TimeOracle,
			MeasuredMin:          sc.MeasuredMin,
			ModelExtraEnergyPct:  sc.ModelExtraEnergyPct,
			OracleExtraEnergyPct: sc.OracleExtraEnergyPct,
		})
		i := len(resp.Devices) - 1
		if winner < 0 || resp.Devices[i].MeasuredMin.MeasuredJ < resp.Devices[winner].MeasuredMin.MeasuredJ {
			winner = i
		}
	}
	resp.Winner = resp.Devices[winner].DeviceID
	resp.WinnerPick = resp.Devices[winner].MeasuredMin
	s.metrics.addAnsweredJoules(resp.Winner, float64(resp.WinnerPick.MeasuredJ))
	writeJSON(w, http.StatusOK, resp)
}

// DeviceInfo is one device's row in the fleet inventory. Samples and
// Coverage are zero while a runtime-added device is still calibrating.
type DeviceInfo struct {
	DeviceID string `json:"device_id"`
	Seed     int64  `json:"seed"`
	// State is the membership lifecycle state (active, calibrating,
	// draining, quarantined, probing).
	State   string `json:"state"`
	Breaker string `json:"breaker"`
	// CalGeneration counts calibration swaps: 1 from boot, +1 per drift
	// recalibration.
	CalGeneration  uint64         `json:"cal_generation"`
	Recalibrations uint64         `json:"recalibrations"`
	Quarantines    uint64         `json:"quarantines"`
	Samples        int            `json:"samples"`
	Coverage       units.Ratio    `json:"coverage"`
	CacheEntries   int            `json:"cache_entries"`
	Inflight       int64          `json:"inflight"`
	Grids          map[string]int `json:"grids"`
}

// DevicesResponse is the answer to GET /v1/fleet/devices, sorted by
// device ID. Epoch is the registry's membership generation — it moves
// on every add, remove, and state change.
type DevicesResponse struct {
	Epoch   uint64         `json:"epoch"`
	States  map[string]int `json:"states"`
	Devices []DeviceInfo   `json:"devices"`
}

// handleFleetDevices dispatches the collection endpoint: GET lists the
// inventory, POST (admin) adds a device.
func (s *Server) handleFleetDevices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleFleetDevicesList(w, r)
	case http.MethodPost:
		s.handleFleetDeviceAdd(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleFleetDevicesList(w http.ResponseWriter, r *http.Request) {
	resp := DevicesResponse{
		Epoch:   s.reg.Epoch(),
		States:  make(map[string]int),
		Devices: make([]DeviceInfo, 0, s.reg.Len()),
	}
	for _, n := range s.reg.Nodes() {
		state, _ := n.Breaker.Snapshot()
		grids := make(map[string]int, len(n.Grids))
		for name, g := range n.Grids {
			grids[name] = len(g)
		}
		samples := 0
		var coverage units.Ratio
		if cal := n.Cal(); cal != nil {
			samples = len(cal.Samples)
			coverage = units.Ratio(cal.Coverage.Fraction())
		}
		resp.States[n.State().String()]++
		resp.Devices = append(resp.Devices, DeviceInfo{
			DeviceID:       n.ID,
			Seed:           n.Cfg.Seed,
			State:          n.State().String(),
			Breaker:        state.String(),
			CalGeneration:  n.CalGeneration(),
			Recalibrations: n.Recalibrations(),
			Quarantines:    n.Quarantines(),
			Samples:        samples,
			Coverage:       coverage,
			CacheEntries:   n.Cache.Len(),
			Inflight:       n.Load(),
			Grids:          grids,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
