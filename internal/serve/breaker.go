package serve

import (
	"sync"
	"time"
)

// breakerState enumerates the circuit breaker's states. The numeric
// values are exported on /metrics as the energyd_breaker_state gauge.
type breakerState int

const (
	breakerClosed   breakerState = 0 // sweeps run normally
	breakerHalfOpen breakerState = 1 // one probe sweep allowed
	breakerOpen     breakerState = 2 // sweeps rejected; cache serves stale
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is the circuit breaker around autotune sweeps. Consecutive
// sweep failures (timeouts, internal errors) trip it open; while open,
// the autotune endpoint answers from the stale sweep cache with a
// degraded flag instead of queueing more doomed sweeps, and /readyz
// reports the daemon not ready. After a cooldown, one half-open probe
// sweep is allowed through: success recloses the breaker, failure
// reopens it for another cooldown. forceOpen pins the breaker open
// regardless of outcomes (the -force-degraded drill flag).
type breaker struct {
	mu        sync.Mutex
	threshold int              // consecutive failures that trip the breaker
	cooldown  time.Duration    // open period before a half-open probe
	now       func() time.Time // injectable clock for tests

	state    breakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	forced   bool
	opens    uint64 // cumulative closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	if now == nil {
		//energylint:allow determinism(defensive default for direct construction in tests; serve.New always injects Options.Clock)
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a fresh sweep may run now. In the half-open
// state only one caller at a time gets a probe slot.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.forced {
		return false
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// success records a completed sweep: it recloses the breaker and resets
// the consecutive-failure count.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a failed sweep. A failed half-open probe reopens the
// breaker immediately; while closed, the threshold-th consecutive
// failure trips it.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.trip()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.trip()
	}
}

// release frees a probe slot granted by allow without recording an
// outcome — the caller was answered from cache, so no sweep ran and
// the breaker learned nothing.
func (b *breaker) release() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// forceOpen pins the breaker open (true) or releases the pin (false).
// Releasing does not close an organically opened breaker.
func (b *breaker) forceOpen(v bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v && !b.forced {
		b.opens++
	}
	b.forced = v
}

// snapshot returns the effective state and the cumulative open count.
func (b *breaker) snapshot() (state breakerState, opens uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state = b.state
	if b.forced {
		state = breakerOpen
	}
	return state, b.opens
}
