// Package serve turns the calibrated DVFS-aware energy model into a
// long-lived prediction service: energyd. The paper's pipeline
// recalibrates per process — 1856 measurements before the first
// prediction — which caps it at one-shot experiment runs. This package
// calibrates (or loads a cached calibration) once and then answers
// energy-prediction and autotuning queries over HTTP:
//
//	POST /v1/predict     — Eq. 9 energy + per-component parts for an
//	                       operation profile at a DVFS setting
//	POST /v1/autotune    — best (f_core, f_mem) over a setting grid vs
//	                       the race-to-halt time oracle, backed by a
//	                       keyed LRU + single-flight sweep cache
//	GET  /v1/calibration — Table I rows, model constants, CV statistics
//	GET  /healthz        — liveness
//	GET  /readyz         — readiness; 503 while the sweep breaker is open
//	GET  /metrics        — Prometheus text format (hand-rolled)
//
// Request deadlines propagate as context.Context into the experiment
// pipelines, and Run drains in-flight requests on shutdown.
//
// A circuit breaker guards the autotune sweep path: consecutive sweep
// failures open it, after which /v1/autotune answers from the stale
// sweep cache with "degraded": true (or 503 on a cache miss) instead of
// queueing more doomed sweeps, and /readyz reports 503 so load
// balancers steer fresh work elsewhere while /healthz stays 200.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
)

// Options tune the server; the zero value selects sensible defaults.
type Options struct {
	// CacheSize bounds the autotune sweep cache (entries); zero = 64.
	CacheSize int
	// SweepTimeout caps the time one autotune sweep may run, independent
	// of any client-supplied deadline; zero = 30 s.
	SweepTimeout time.Duration
	// BreakerThreshold is the number of consecutive sweep failures that
	// open the circuit breaker; zero = 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// a half-open probe sweep; zero = 30 s.
	BreakerCooldown time.Duration
	// Clock overrides the server's time source — breaker cooldowns and
	// request-latency metrics (tests); nil = time.Now.
	Clock func() time.Time
}

// Server answers model queries against one calibration. It is safe for
// concurrent use: the calibration and device are read-only after
// construction, and the cache and metrics synchronize internally.
type Server struct {
	dev     *tegra.Device
	cal     *experiments.Calibration
	cfg     experiments.Config
	grids   map[string][]dvfs.Setting
	metrics *metrics
	cache   *sweepCache
	breaker *breaker
	timeout time.Duration
	clock   func() time.Time // Options.Clock; drives latency metrics and the breaker
}

// New builds a server around a fitted calibration.
func New(dev *tegra.Device, cal *experiments.Calibration, cfg experiments.Config, opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 64
	}
	if opts.SweepTimeout <= 0 {
		opts.SweepTimeout = 30 * time.Second
	}
	if opts.Clock == nil {
		//energylint:allow determinism(the clock is injected via Options.Clock; wall time is the production default and tests override it)
		opts.Clock = time.Now
	}
	calGrid := make([]dvfs.Setting, 0, 16)
	for _, cs := range dvfs.CalibrationSettings() {
		calGrid = append(calGrid, cs.Setting)
	}
	return &Server{
		dev: dev,
		cal: cal,
		cfg: cfg,
		grids: map[string][]dvfs.Setting{
			// "calibration": the paper's 16 measured settings (§II-E
			// autotunes among configurations with measurements).
			// "full": all 105 core x memory permutations.
			"calibration": calGrid,
			"full":        dvfs.Grid(),
		},
		metrics: newMetrics(),
		cache:   newSweepCache(opts.CacheSize),
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock),
		timeout: opts.SweepTimeout,
		clock:   opts.Clock,
	}
}

// ForceBreakerOpen pins the sweep breaker open (degraded-mode drill) or
// releases the pin. See the -force-degraded flag of cmd/energyd.
func (s *Server) ForceBreakerOpen(v bool) {
	s.breaker.forceOpen(v)
}

// Handler returns the daemon's routing table with every endpoint
// instrumented for /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	mux.Handle("/v1/autotune", s.instrument("/v1/autotune", s.handleAutotune))
	mux.Handle("/v1/calibration", s.instrument("/v1/calibration", s.handleCalibration))
	mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with in-flight, count and latency tracking.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.addInflight(1)
		defer s.metrics.addInflight(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := s.clock()
		h(sw, r)
		s.metrics.observe(endpoint, sw.code, s.clock().Sub(start).Seconds())
	})
}

// Run serves h on l until ctx is cancelled, then shuts the server down
// gracefully: the listener closes immediately, in-flight requests drain,
// and Run returns once every handler has finished (or drainTimeout
// elapses, whichever is first). This is the SIGINT/SIGTERM path of
// cmd/energyd.
func Run(ctx context.Context, l net.Listener, h http.Handler, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
