// Package serve turns calibrated DVFS-aware energy models into a
// long-lived prediction service: energyd. The paper's pipeline
// recalibrates per process — 1856 measurements before the first
// prediction — which caps it at one-shot experiment runs. This package
// serves one device (the legacy mode) or a heterogeneous fleet of them
// (see internal/fleet) behind one HTTP surface:
//
//	POST /v1/predict       — Eq. 9 energy + per-component parts for an
//	                         operation profile at a DVFS setting
//	POST /v1/autotune      — best (f_core, f_mem) over a setting grid vs
//	                         the race-to-halt time oracle, backed by a
//	                         per-device keyed LRU + single-flight cache
//	GET  /v1/calibration   — Table I rows, model constants, CV statistics
//	POST /v1/fleet/predict — predict routed across the fleet; the answer
//	                         names the device that served it
//	POST /v1/fleet/place   — cheapest placement: sweep every device and
//	                         argmin measured energy across the fleet
//	GET  /v1/fleet/devices — fleet inventory with per-device health
//	GET  /healthz          — liveness
//	GET  /readyz           — readiness; 503 while no device can sweep
//	GET  /metrics          — Prometheus text format (hand-rolled)
//	GET  /v1/stats         — the same counters as JSON: per-device
//	                         breaker/cache/energy ledgers, per-endpoint
//	                         status counts (machine-readable, for the
//	                         energyload replay report)
//
// Request routing is deterministic: predict and autotune traffic lands
// on a device by consistent hash of the workload identity (cache
// affinity), failing over in ring order around open breakers; placement
// shards every device's sweep onto one worker pool with
// identity-derived seeds. Fleet answers are therefore byte-identical at
// any worker count and for any routing history.
//
// Single-device mode is the degenerate one-node fleet: the node carries
// the reserved empty ID, which keeps device labels off every legacy
// wire format, so existing clients see byte-identical responses.
//
// Request deadlines propagate as context.Context into the experiment
// pipelines, and Run drains in-flight requests on shutdown.
//
// A per-device circuit breaker guards each sweep path: consecutive
// sweep failures open it, after which that device answers autotunes
// from its stale sweep cache with "degraded": true (or 503 on a cache
// miss) instead of queueing more doomed sweeps, and /readyz reports 503
// once no device can accept fresh sweeps while /healthz stays 200.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/tegra"
)

// Options tune the server; the zero value selects sensible defaults.
type Options struct {
	// CacheSize bounds each device's autotune sweep cache (entries);
	// zero = 64.
	CacheSize int
	// SweepTimeout caps the time one autotune sweep may run, independent
	// of any client-supplied deadline; zero = 30 s.
	SweepTimeout time.Duration
	// BreakerThreshold is the number of consecutive sweep failures that
	// open a device's circuit breaker; zero = 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing
	// a half-open probe sweep; zero = 30 s.
	BreakerCooldown time.Duration
	// Clock overrides the server's time source — breaker cooldowns and
	// request-latency metrics (tests); nil = time.Now.
	Clock func() time.Time
	// Admin enables the fleet membership API (POST and DELETE on
	// /v1/fleet/devices): nil disables it, and legacy single-device
	// servers never enable it regardless.
	Admin *fleet.Admin
	// DrainDeadline bounds how long a DELETE ?mode=drain waits for a
	// device's in-flight requests before removing it anyway; zero = 30 s.
	DrainDeadline time.Duration
	// Drift enables the calibration drift watchdog over fresh sweep
	// results; nil disables it.
	Drift *fleet.DriftConfig
	// Recalibrate re-fits a drifted device's constants; nil selects
	// fleet.DefaultRecalibrator. Only consulted when Drift is set.
	Recalibrate fleet.Recalibrator
	// SyncRecalibrate runs drift recalibrations on the request goroutine
	// that detected the drift instead of in the background — for
	// deterministic tests; production leaves it false.
	SyncRecalibrate bool
}

func (o Options) withDefaults() Options {
	if o.SweepTimeout <= 0 {
		o.SweepTimeout = 30 * time.Second
	}
	if o.DrainDeadline <= 0 {
		o.DrainDeadline = 30 * time.Second
	}
	if o.Clock == nil {
		//energylint:allow determinism(the clock is injected via Options.Clock; wall time is the production default and tests override it)
		o.Clock = time.Now
	}
	if o.Recalibrate == nil {
		o.Recalibrate = fleet.DefaultRecalibrator
	}
	return o
}

// NodeOptions projects the server options onto the per-device knobs
// fleet.Build expects, so cmd/energyd configures both layers from one
// flag set.
func (o Options) NodeOptions() fleet.NodeOptions {
	return fleet.NodeOptions{
		CacheSize:        o.CacheSize,
		BreakerThreshold: o.BreakerThreshold,
		BreakerCooldown:  o.BreakerCooldown,
		Clock:            o.Clock,
	}
}

// Server answers model queries against a registry of calibrated
// devices. It is safe for concurrent use: the registry is read-only
// after construction, and each node's cache, breaker and the metrics
// synchronize internally.
type Server struct {
	reg *fleet.Registry
	// legacy marks single-device mode: one node with the reserved empty
	// ID, no device labels on any wire format, responses byte-identical
	// to the pre-fleet daemon.
	legacy  bool
	metrics *metrics
	timeout time.Duration
	clock   func() time.Time // Options.Clock; drives latency metrics and the breakers

	// Membership admin (nil = API disabled) and drift watchdog
	// (nil = disabled); see the matching Options fields.
	admin         *fleet.Admin
	drainDeadline time.Duration
	drift         *fleet.DriftConfig
	recal         fleet.Recalibrator
	syncRecal     bool
}

// New builds a single-device server around a fitted calibration: the
// degenerate one-node fleet. The node carries the reserved empty ID, so
// every response and metric line is byte-identical to the pre-fleet
// daemon.
func New(dev *tegra.Device, cal *experiments.Calibration, cfg experiments.Config, opts Options) *Server {
	opts = opts.withDefaults()
	calGrid := make([]dvfs.Setting, 0, 16)
	for _, cs := range dvfs.CalibrationSettings() {
		calGrid = append(calGrid, cs.Setting)
	}
	grids := map[string][]dvfs.Setting{
		// "calibration": the paper's 16 measured settings (§II-E
		// autotunes among configurations with measurements).
		// "full": all 105 core x memory permutations.
		"calibration": calGrid,
		"full":        dvfs.Grid(),
	}
	node := fleet.NewNode("", dev, cal, cfg, grids, opts.NodeOptions())
	reg, err := fleet.NewRegistry([]*fleet.Node{node}, 0)
	if err != nil {
		// Unreachable: one node, no duplicate IDs.
		panic(err)
	}
	return &Server{
		reg:     reg,
		legacy:  true,
		metrics: newMetrics(),
		timeout: opts.SweepTimeout,
		clock:   opts.Clock,
		// Membership admin stays off in legacy mode: the one node is the
		// whole deployment, and its reserved empty ID is not addressable.
		drainDeadline: opts.DrainDeadline,
		drift:         opts.Drift,
		recal:         opts.Recalibrate,
		syncRecal:     opts.SyncRecalibrate,
	}
}

// NewFleet builds a multi-device server over an assembled registry
// (see fleet.Build).
func NewFleet(reg *fleet.Registry, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		reg:           reg,
		metrics:       newMetrics(),
		timeout:       opts.SweepTimeout,
		clock:         opts.Clock,
		admin:         opts.Admin,
		drainDeadline: opts.DrainDeadline,
		drift:         opts.Drift,
		recal:         opts.Recalibrate,
		syncRecal:     opts.SyncRecalibrate,
	}
}

// Registry exposes the fleet behind the server.
func (s *Server) Registry() *fleet.Registry { return s.reg }

// ForceBreakerOpen pins every device's sweep breaker open (degraded-mode
// drill) or releases the pins. See the -force-degraded flag of
// cmd/energyd.
func (s *Server) ForceBreakerOpen(v bool) {
	for _, n := range s.reg.Nodes() {
		n.Breaker.ForceOpen(v)
	}
}

// Handler returns the daemon's routing table with every endpoint
// instrumented for /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	mux.Handle("/v1/autotune", s.instrument("/v1/autotune", s.handleAutotune))
	mux.Handle("/v1/calibration", s.instrument("/v1/calibration", s.handleCalibration))
	mux.Handle("/v1/fleet/predict", s.instrument("/v1/fleet/predict", s.handleFleetPredict))
	mux.Handle("/v1/fleet/place", s.instrument("/v1/fleet/place", s.handleFleetPlace))
	mux.Handle("/v1/fleet/devices", s.instrument("/v1/fleet/devices", s.handleFleetDevices))
	// The per-device subtree carries the membership verbs:
	// DELETE /v1/fleet/devices/{id}?mode=drain|evict.
	mux.Handle("/v1/fleet/devices/", s.instrument("/v1/fleet/devices/{id}", s.handleFleetDevice))
	mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	// /v1/stats is deliberately uninstrumented, like /metrics: reading
	// the counters must not move them, or a replay report could never
	// reconcile its request totals against the server's.
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with in-flight, count and latency tracking.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.addInflight(1)
		defer s.metrics.addInflight(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := s.clock()
		h(sw, r)
		s.metrics.observe(endpoint, sw.code, s.clock().Sub(start).Seconds())
	})
}

// markDevice names the serving device on responses. Fleet mode conveys
// it in a response header so the legacy endpoint bodies stay
// byte-identical whether the fleet has one device or fifty; legacy mode
// (the empty ID) adds nothing at all.
func markDevice(w http.ResponseWriter, id string) {
	if id != "" {
		w.Header().Set("X-Energyd-Device", id)
	}
}

// Run serves h on l until ctx is cancelled, then shuts the server down
// gracefully: the listener closes immediately, in-flight requests drain,
// and Run returns once every handler has finished (or drainTimeout
// elapses, whichever is first). This is the SIGINT/SIGTERM path of
// cmd/energyd.
func Run(ctx context.Context, l net.Listener, h http.Handler, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
