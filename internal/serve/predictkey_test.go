package serve

import (
	"fmt"
	"math"
	"testing"

	"dvfsroofline/internal/units"
)

// fmtPredictKey is the original fmt-based encoding predictKey replaced.
// predictKey feeds the consistent-hash ring: if one byte of the
// encoding moves, every request remaps to a different device and every
// warm sweep cache goes cold. The strconv rewrite must therefore be
// byte-identical, not just injective.
func fmtPredictKey(req PredictRequest) string {
	p := req.Profile
	s := fmt.Sprintf("p id=%s t=%g occ=%g", req.SettingID, req.TimeS, req.Occupancy)
	if req.Setting != nil {
		s += fmt.Sprintf(" core=%g mem=%g", req.Setting.CoreMHz, req.Setting.MemMHz)
	}
	s += fmt.Sprintf(" sp=%g fma=%g add=%g mul=%g int=%g sm=%g l1=%g l2=%g dram=%g",
		p.SP, p.DPFMA, p.DPAdd, p.DPMul, p.Int,
		p.SharedWords, p.L1Words, p.L2Words, p.DRAMWords)
	return s
}

func TestPredictKeyBytes(t *testing.T) {
	// Values chosen to cross every %g formatting regime: zero, negative
	// zero, integers, shortest-repr fractions, the 1e-5/1e21 switchover
	// to exponent notation, subnormals, huge magnitudes, and the
	// non-finite values a hostile request body can smuggle in.
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.25, 1.5e6, 1234.5678,
		1e-4, 9.999e-5, 1e-5, 1e20, 1e21, 1e22, 5e-324,
		math.MaxFloat64, -math.MaxFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		0.1, 1.0 / 3.0, 2.5e8,
	}
	ids := []string{"", "S1", "max", "weird id \x00\xff"}

	reqs := []PredictRequest{}
	for i, v := range vals {
		w := vals[(i+7)%len(vals)]
		reqs = append(reqs,
			PredictRequest{
				SettingID: ids[i%len(ids)],
				TimeS:     units.Second(v),
				Occupancy: units.Ratio(w),
				Profile: ProfileJSON{
					SP: units.Count(v), DPFMA: units.Count(w), DPAdd: units.Count(-v),
					DPMul: units.Count(v * 3), Int: units.Count(w / 7),
					SharedWords: units.Count(v), L1Words: units.Count(w),
					L2Words: units.Count(v + w), DRAMWords: units.Count(v - w),
				},
			},
			PredictRequest{
				Setting:   &SettingJSON{CoreMHz: units.MegaHertz(v), MemMHz: units.MegaHertz(w)},
				TimeS:     units.Second(w),
				Occupancy: units.Ratio(v),
				Profile:   ProfileJSON{SP: units.Count(w), DRAMWords: units.Count(v)},
			},
		)
	}
	for _, req := range reqs {
		got, want := predictKey(req), fmtPredictKey(req)
		if got != want {
			t.Errorf("predictKey diverged from the fmt encoding:\n got %q\nwant %q", got, want)
		}
	}
}

func BenchmarkPredictKey(b *testing.B) {
	req := PredictRequest{
		SettingID: "S4",
		TimeS:     0.0625,
		Occupancy: 0.25,
		Profile: ProfileJSON{
			SP: 1.5e6, DPFMA: 2.5e8, DPAdd: 1e7, DPMul: 3.2e7, Int: 4.1e8,
			SharedWords: 9.6e7, L1Words: 1.1e8, L2Words: 5.5e7, DRAMWords: 1.9e7,
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if predictKey(req) == "" {
			b.Fatal("empty key")
		}
	}
}
