package serve

import (
	"fmt"
	"net/http"

	"dvfsroofline/internal/units"
)

// This file is the machine-readable counterpart of /metrics: a JSON
// snapshot of the serving counters, added so the energyload replayer
// (cmd/energyload) can reconcile its client-side report against the
// server's view without parsing Prometheus text exposition. The
// response marshals deterministically — device rows sort by ID and
// encoding/json sorts map keys — so two identically-seeded runs that
// served identical traffic produce byte-identical snapshots.

// DeviceStats is one device's counter row in a /v1/stats snapshot.
// SweepJ integrates the measured energy of every candidate the device's
// fresh sweeps burned through; AnsweredJ integrates the energy of the
// picks it returned to clients. AnsweredJ/SweepJ — energy answered per
// joule of sweep work — is the cache's leverage: answers served from
// cache or joined flights grow the numerator at zero sweep cost.
type DeviceStats struct {
	DeviceID       string      `json:"device_id"`
	State          string      `json:"state"`
	Breaker        string      `json:"breaker"`
	BreakerOpens   uint64      `json:"breaker_opens"`
	CalGeneration  uint64      `json:"cal_generation"`
	Recalibrations uint64      `json:"recalibrations"`
	Quarantines    uint64      `json:"quarantines"`
	CacheHits      uint64      `json:"cache_hits"`
	CacheMisses    uint64      `json:"cache_misses"`
	DegradedServes uint64      `json:"degraded_serves"`
	SweepJ         units.Joule `json:"sweep_j"`
	AnsweredJ      units.Joule `json:"answered_j"`
	Inflight       int64       `json:"inflight"`
}

// EndpointStats is one endpoint's request counters, split by HTTP
// status code (keys are the decimal codes, e.g. "200").
type EndpointStats struct {
	Requests uint64            `json:"requests"`
	ByCode   map[string]uint64 `json:"by_code"`
}

// StatsResponse is the answer to GET /v1/stats. Epoch and States track
// fleet membership: the registry generation and the per-lifecycle-state
// device counts (active/draining/quarantined/...).
type StatsResponse struct {
	Epoch     uint64                   `json:"epoch"`
	States    map[string]int           `json:"states"`
	Devices   []DeviceStats            `json:"devices"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.metrics.snapshot()
	resp := StatsResponse{
		Epoch:     s.reg.Epoch(),
		States:    make(map[string]int),
		Devices:   make([]DeviceStats, 0, s.reg.Len()),
		Endpoints: make(map[string]EndpointStats, len(snap.endpoints)),
	}
	// Every registry node gets a row, zero counters included, so a
	// report can always find the device it routed to. Nodes() is sorted
	// by ID, which keeps the array order deterministic.
	for _, n := range s.reg.Nodes() {
		state, opens := n.Breaker.Snapshot()
		resp.States[n.State().String()]++
		resp.Devices = append(resp.Devices, DeviceStats{
			DeviceID:       n.ID,
			State:          n.State().String(),
			Breaker:        state.String(),
			BreakerOpens:   opens,
			CalGeneration:  n.CalGeneration(),
			Recalibrations: n.Recalibrations(),
			Quarantines:    n.Quarantines(),
			CacheHits:      snap.hits[n.ID],
			CacheMisses:    snap.misses[n.ID],
			DegradedServes: snap.degraded[n.ID],
			SweepJ:         units.Joule(snap.sweepJ[n.ID]),
			AnsweredJ:      units.Joule(snap.answeredJ[n.ID]),
			Inflight:       n.Load(),
		})
	}
	for ep, codes := range snap.endpoints {
		e := EndpointStats{ByCode: make(map[string]uint64, len(codes))}
		for code, count := range codes {
			e.ByCode[fmt.Sprintf("%d", code)] = count
			e.Requests += count
		}
		resp.Endpoints[ep] = e
	}
	writeJSON(w, http.StatusOK, resp)
}
