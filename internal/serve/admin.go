package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/fleet"
)

// Fleet membership admin API.
//
//	POST   /v1/fleet/devices              — add a device (body: fleet.Spec JSON)
//	DELETE /v1/fleet/devices/{id}         — remove one (?mode=drain|evict)
//
// Adding runs calibration off the request path: the device joins in the
// calibrating state (visible on the inventory, owning no ring keys) and
// activates only once its calibration lands, so a slow measured
// campaign never blocks the admin call or routes traffic to an
// unserveable node. ?wait=1 turns the call synchronous for scripts that
// want the device serving when curl returns. Draining stops new
// placements first, waits out in-flight work up to the deadline, then
// removes the device; evicting removes it immediately. Either way the
// device's ring keys re-home deterministically on the survivors and its
// single-flight waiters settle with fleet.ErrDeviceRemoved.

// AddDeviceResponse answers POST /v1/fleet/devices.
type AddDeviceResponse struct {
	DeviceID string `json:"device_id"`
	// State is the device's lifecycle state when the response was
	// written: "active" for ?wait=1, usually "calibrating" otherwise.
	State string `json:"state"`
	Seed  int64  `json:"seed"`
}

// RemoveDeviceResponse answers DELETE /v1/fleet/devices/{id}.
type RemoveDeviceResponse struct {
	DeviceID string `json:"device_id"`
	Mode     string `json:"mode"`
	State    string `json:"state"`
	// Graceful reports whether a drain saw the device idle before its
	// deadline; evictions report false.
	Graceful bool `json:"graceful"`
}

// adminEnabled gates the membership verbs; the legacy single-device
// server and fleets built without an Admin reject them.
func (s *Server) adminEnabled(w http.ResponseWriter) bool {
	if s.legacy || s.admin == nil {
		writeError(w, http.StatusForbidden, "fleet membership admin is disabled")
		return false
	}
	return true
}

// handleFleetDeviceAdd admits a new device from a spec body.
func (s *Server) handleFleetDeviceAdd(w http.ResponseWriter, r *http.Request) {
	if !s.adminEnabled(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	spec, err := fleet.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, ok := s.reg.Get(spec.ID); ok {
		writeErrorDev(w, http.StatusConflict, fmt.Sprintf("device %q already in the fleet", spec.ID), spec.ID)
		return
	}
	node, err := s.admin.BuildNode(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.reg.Add(node, fleet.StateCalibrating); err != nil {
		// A concurrent add of the same ID won the race.
		writeErrorDev(w, http.StatusConflict, err.Error(), spec.ID)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if err := s.calibrateAndActivate(node); err != nil {
			writeErrorDev(w, http.StatusInternalServerError, err.Error(), spec.ID)
			return
		}
		markDevice(w, node.ID)
		writeJSON(w, http.StatusCreated, AddDeviceResponse{
			DeviceID: node.ID, State: node.State().String(), Seed: node.Cfg.Seed,
		})
		return
	}
	go func() { _ = s.calibrateAndActivate(node) }()
	markDevice(w, node.ID)
	writeJSON(w, http.StatusAccepted, AddDeviceResponse{
		DeviceID: node.ID, State: node.State().String(), Seed: node.Cfg.Seed,
	})
}

// calibrateAndActivate lands a newly added device's calibration and puts
// it on the ring; on failure the device leaves the fleet again — a node
// that cannot calibrate must not linger in limbo holding its ID.
func (s *Server) calibrateAndActivate(node *fleet.Node) error {
	cal, err := s.admin.Calibrate(node.Spec)
	if err != nil {
		_ = s.reg.Evict(node.ID)
		return fmt.Errorf("calibrating device %q: %w", node.ID, err)
	}
	node.SetCalibration(cal)
	if err := s.reg.SetState(node.ID, fleet.StateActive); err != nil {
		// Drained or evicted while calibrating; it is already gone.
		return err
	}
	return nil
}

// handleFleetDevice serves the /v1/fleet/devices/{id} subtree.
func (s *Server) handleFleetDevice(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/fleet/devices/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "want /v1/fleet/devices/{id}")
		return
	}
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	if !s.adminEnabled(w) {
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "drain"
	}
	if _, ok := s.reg.Get(id); !ok {
		writeErrorDev(w, http.StatusNotFound, fmt.Sprintf("unknown device %q", id), id)
		return
	}
	var graceful bool
	var err error
	switch mode {
	case "evict":
		err = s.reg.Evict(id)
	case "drain":
		deadline := s.drainDeadline
		if ds := r.URL.Query().Get("deadline_s"); ds != "" {
			sec, perr := strconv.ParseFloat(ds, 64)
			if perr != nil || sec <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad deadline_s %q", ds))
				return
			}
			deadline = time.Duration(sec * float64(time.Second))
		}
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		defer cancel()
		graceful, err = s.reg.Drain(ctx, id)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (want \"drain\" or \"evict\")", mode))
		return
	}
	if err != nil {
		writeErrorDev(w, http.StatusNotFound, err.Error(), id)
		return
	}
	markDevice(w, id)
	writeJSON(w, http.StatusOK, RemoveDeviceResponse{
		DeviceID: id, Mode: mode, State: fleet.StateRemoved.String(), Graceful: graceful,
	})
}

// observeSweep feeds one fresh sweep's candidates to the drift watchdog
// and, when it fires, runs the recalibration — inline when
// SyncRecalibrate is set, in the background otherwise. The busy flag on
// the node guarantees one campaign per device at a time; the constants
// swap atomically on success, so serving never pauses.
func (s *Server) observeSweep(n *fleet.Node, cands []core.Candidate) {
	if s.drift == nil {
		return
	}
	if !n.ObserveSweep(*s.drift, cands) || !n.BeginRecalibration() {
		return
	}
	run := func() {
		cal, err := s.recal(context.Background(), n)
		n.FinishRecalibration(cal, err)
	}
	if s.syncRecal {
		run()
		return
	}
	go run()
}
