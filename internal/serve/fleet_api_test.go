package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
)

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func fullGrids(t *testing.T) map[string][]dvfs.Setting {
	t.Helper()
	calGrid := make([]dvfs.Setting, 0, 16)
	for _, cs := range dvfs.CalibrationSettings() {
		calGrid = append(calGrid, cs.Setting)
	}
	return map[string][]dvfs.Setting{"calibration": calGrid, "full": dvfs.Grid()}
}

// identicalFleet builds a fleet of n clones of the legacy single
// device: same simulator, same fixture calibration, same seed, same
// grids — only the IDs differ.
func identicalFleet(t *testing.T, n int) *serve.Server {
	t.Helper()
	cal, err := serve.FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}[:n]
	nodes := make([]*fleet.Node, n)
	for i, id := range ids {
		nodes[i] = fleet.NewNode(id, tegra.NewDevice(), cal,
			experiments.Config{Seed: 42}, fullGrids(t), fleet.NodeOptions{})
	}
	reg, err := fleet.NewRegistry(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewFleet(reg, serve.Options{})
}

// heterogeneousFleet builds the 3-device fleet from specs through the
// production path (fleet.Build + synthetic calibrations).
func heterogeneousFleet(t *testing.T, workers int) *serve.Server {
	t.Helper()
	fc := fleet.FleetConfig{Seed: 42, Devices: []fleet.Spec{
		{ID: "tk1-reference"},
		{ID: "tk1-binned-hot", Params: fleet.ParamsJSON{LeakProcWpV: 3.55, MiscW: 0.32}},
		{ID: "tk1-lowpower-sku", Params: fleet.ParamsJSON{SPpJ: 22.1, DRAMpJ: 318.5}, MaxCoreMHz: 612},
	}}
	reg, err := fleet.Build(fc, experiments.Config{Seed: 42, Workers: workers}, nil, fleet.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewFleet(reg, serve.Options{})
}

// TestIdenticalFleetMatchesSingleDevice is the degenerate-fleet
// contract: a fleet of devices identical to the legacy single device
// (same simulator, calibration and seed) answers /v1/predict and
// /v1/autotune with byte-identical bodies — routing across clones must
// be invisible on the wire.
func TestIdenticalFleetMatchesSingleDevice(t *testing.T) {
	cal, err := serve.FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	single := serve.New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, serve.Options{}).Handler()
	fleetH := identicalFleet(t, 3).Handler()

	predictBodies := []string{
		`{"profile": {"dp_fma": 1e9, "int": 5e8, "dram_words": 2e8}, "setting_id": "S1", "time_s": 0.5}`,
		`{"profile": {"sp": 4e9, "dram_words": 5e7}, "setting": {"core_mhz": 756, "mem_mhz": 792}}`,
		`{"profile": {"l2_words": 1e9}, "setting_id": "max", "occupancy": 0.7}`,
	}
	for _, body := range predictBodies {
		sw, fw := post(t, single, "/v1/predict", body), post(t, fleetH, "/v1/predict", body)
		if sw.Code != http.StatusOK || fw.Code != http.StatusOK {
			t.Fatalf("predict %q: single=%d fleet=%d", body, sw.Code, fw.Code)
		}
		if sw.Body.String() != fw.Body.String() {
			t.Errorf("predict %q differs between single-device and identical fleet:\n single %s\n fleet  %s",
				body, sw.Body, fw.Body)
		}
	}

	autotuneBodies := []string{
		`{"profile": {"dp_fma": 2e8, "int": 1e8, "dram_words": 5e7}, "occupancy": 0.9}`,
		`{"profile": {"sp": 4e8, "shared_words": 2e8}, "occupancy": 0.5}`,
	}
	for _, body := range autotuneBodies {
		sw, fw := post(t, single, "/v1/autotune", body), post(t, fleetH, "/v1/autotune", body)
		if sw.Code != http.StatusOK || fw.Code != http.StatusOK {
			t.Fatalf("autotune %q: single=%d fleet=%d", body, sw.Code, fw.Code)
		}
		if sw.Body.String() != fw.Body.String() {
			t.Errorf("autotune %q differs between single-device and identical fleet:\n single %s\n fleet  %s",
				body, sw.Body, fw.Body)
		}
	}

	// Error bodies too: in fleet mode the device travels in a header,
	// never in the legacy body.
	bad := `{"profile": {"sp": 1e9}}`
	sw, fw := post(t, single, "/v1/predict", bad), post(t, fleetH, "/v1/predict", bad)
	if sw.Code != fw.Code {
		t.Fatalf("error codes differ: single=%d fleet=%d", sw.Code, fw.Code)
	}
	if fw.Header().Get("X-Energyd-Device") == "" {
		t.Error("fleet error response missing the device header")
	}
	var ferr struct {
		Error    string `json:"error"`
		DeviceID string `json:"device_id"`
	}
	if err := json.Unmarshal(fw.Body.Bytes(), &ferr); err != nil {
		t.Fatal(err)
	}
	if ferr.Error == "" || ferr.DeviceID == "" {
		t.Errorf("fleet error body %s must carry error and device_id", fw.Body)
	}
	if strings.Contains(sw.Body.String(), "device_id") {
		t.Errorf("single-device error body grew a device_id: %s", sw.Body)
	}
}

// TestFleetPlaceDeterministic is the core acceptance test: the
// placement answer is byte-identical at any worker count, on repeat
// calls (cache-backed), and after unrelated traffic reshuffles each
// device's cache state.
func TestFleetPlaceDeterministic(t *testing.T) {
	body := `{"profile": {"dp_fma": 2e8, "int": 1e8, "dram_words": 5e7}, "occupancy": 0.9}`

	h1 := heterogeneousFleet(t, 1).Handler()
	h8 := heterogeneousFleet(t, 8).Handler()

	w1 := post(t, h1, "/v1/fleet/place", body)
	if w1.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", w1.Code, w1.Body)
	}
	if w8 := post(t, h8, "/v1/fleet/place", body); w8.Body.String() != w1.Body.String() {
		t.Errorf("placement depends on worker count:\n w=1 %s\n w=8 %s", w1.Body, w8.Body)
	}

	// Warm one device's cache through /v1/autotune first, so the second
	// server answers the same placement from a mix of cached and fresh
	// sweeps — the bytes must not care.
	hWarm := heterogeneousFleet(t, 2).Handler()
	if w := post(t, hWarm, "/v1/autotune", body); w.Code != http.StatusOK {
		t.Fatalf("warm autotune = %d: %s", w.Code, w.Body)
	}
	if ww := post(t, hWarm, "/v1/fleet/place", body); ww.Body.String() != w1.Body.String() {
		t.Errorf("placement depends on cache history:\n cold %s\n warm %s", w1.Body, ww.Body)
	}

	// Repeat on the same server: fully cached now, still identical.
	if again := post(t, h1, "/v1/fleet/place", body); again.Body.String() != w1.Body.String() {
		t.Errorf("repeat placement drifted:\n first  %s\n second %s", w1.Body, again.Body)
	}

	var resp serve.PlaceResponse
	if err := json.Unmarshal(w1.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Devices) != 3 || len(resp.Skipped) != 0 {
		t.Fatalf("place covered %d devices (%d skipped), want 3/0: %s", len(resp.Devices), len(resp.Skipped), w1.Body)
	}
	for i := 1; i < len(resp.Devices); i++ {
		if resp.Devices[i-1].DeviceID >= resp.Devices[i].DeviceID {
			t.Error("placements not sorted by device ID")
		}
	}
	if resp.Winner == "" || resp.WinnerPick.MeasuredJ <= 0 {
		t.Fatalf("no winner in %s", w1.Body)
	}
	for _, d := range resp.Devices {
		if d.MeasuredMin.MeasuredJ < resp.WinnerPick.MeasuredJ {
			t.Errorf("device %s beats the declared winner %s", d.DeviceID, resp.Winner)
		}
	}
}

// TestFleetAutotuneFailover: opening the primary's breaker moves sweep
// traffic to the next device on the hash ring; opening every breaker
// serves the warmed primary's cache flagged degraded.
func TestFleetAutotuneFailover(t *testing.T) {
	s := identicalFleet(t, 3)
	h := s.Handler()
	body := `{"profile": {"dp_fma": 2e8, "dram_words": 5e7}, "occupancy": 0.9}`

	first := post(t, h, "/v1/autotune", body)
	if first.Code != http.StatusOK {
		t.Fatalf("autotune = %d: %s", first.Code, first.Body)
	}
	primaryID := first.Header().Get("X-Energyd-Device")
	if primaryID == "" {
		t.Fatal("fleet autotune did not name its device")
	}
	primary, ok := s.Registry().Get(primaryID)
	if !ok {
		t.Fatalf("unknown primary %q", primaryID)
	}

	primary.Breaker.ForceOpen(true)
	over := post(t, h, "/v1/autotune", body)
	if over.Code != http.StatusOK {
		t.Fatalf("failover autotune = %d: %s", over.Code, over.Body)
	}
	backupID := over.Header().Get("X-Energyd-Device")
	if backupID == "" || backupID == primaryID {
		t.Fatalf("traffic did not fail over: served by %q", backupID)
	}
	// Identical clones with identical seeds: the failover answer matches
	// the primary's byte for byte.
	if over.Body.String() != first.Body.String() {
		t.Errorf("failover answer drifted:\n primary %s\n backup  %s", first.Body, over.Body)
	}
	// The failover target is stable while the outage lasts.
	for i := 0; i < 4; i++ {
		if w := post(t, h, "/v1/autotune", body); w.Header().Get("X-Energyd-Device") != backupID {
			t.Fatal("failover target changed between requests")
		}
	}

	// All breakers open: the primary's cached sweep serves degraded.
	s.ForceBreakerOpen(true)
	deg := post(t, h, "/v1/autotune", body)
	if deg.Code != http.StatusOK {
		t.Fatalf("degraded autotune = %d: %s", deg.Code, deg.Body)
	}
	var resp serve.AutotuneResponse
	if err := json.Unmarshal(deg.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !resp.Cached {
		t.Errorf("all-open fleet answer flags degraded=%v cached=%v, want both", resp.Degraded, resp.Cached)
	}
	if got := deg.Header().Get("X-Energyd-Device"); got != primaryID {
		t.Errorf("degraded answer served by %q, want the primary %q", got, primaryID)
	}

	// /readyz: open breakers alone no longer fail readiness — the fleet
	// still serves (degraded). Readiness fails only at zero active
	// devices; the body counts states so operators see the whole fleet
	// is breaker-open.
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("/readyz = %d with all breakers open but devices active, want 200", w.Code)
	} else {
		var body struct {
			Active int            `json:"active"`
			Open   int            `json:"open"`
			States map[string]int `json:"states"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.Active != 3 || body.Open != 3 || body.States["active"] != 3 {
			t.Errorf("/readyz body active=%d open=%d states=%v, want 3/3/active:3", body.Active, body.Open, body.States)
		}
	}
	primary.Breaker.ForceOpen(false)
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("/readyz = %d with one device recovered, want 200", w.Code)
	}

	// Place skips open-breaker devices instead of failing.
	s.ForceBreakerOpen(true)
	primary.Breaker.ForceOpen(false)
	w := post(t, h, "/v1/fleet/place", body)
	if w.Code != http.StatusOK {
		t.Fatalf("partial-fleet place = %d: %s", w.Code, w.Body)
	}
	var place serve.PlaceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &place); err != nil {
		t.Fatal(err)
	}
	// The primary sweeps fresh; the two open devices have no cache for
	// this key only if they never served it — node-b may hold the
	// failover sweep, so just check accounting adds up.
	if len(place.Devices)+len(place.Skipped) != 3 {
		t.Errorf("place accounted for %d+%d devices, want 3: %s", len(place.Devices), len(place.Skipped), w.Body)
	}
	if len(place.Skipped) == 0 {
		t.Error("open-breaker devices with cold caches were not reported as skipped")
	}
}

// TestFleetEndpoints covers the inventory and pinned-device surfaces.
func TestFleetEndpoints(t *testing.T) {
	s := heterogeneousFleet(t, 2)
	h := s.Handler()

	w := get(t, h, "/v1/fleet/devices")
	if w.Code != http.StatusOK {
		t.Fatalf("devices = %d: %s", w.Code, w.Body)
	}
	var inv serve.DevicesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Devices) != 3 {
		t.Fatalf("inventory has %d devices, want 3", len(inv.Devices))
	}
	wantIDs := []string{"tk1-binned-hot", "tk1-lowpower-sku", "tk1-reference"}
	for i, d := range inv.Devices {
		if d.DeviceID != wantIDs[i] {
			t.Errorf("inventory[%d] = %q, want %q (sorted)", i, d.DeviceID, wantIDs[i])
		}
		if d.Breaker != "closed" || d.Samples == 0 || d.Coverage != 1 {
			t.Errorf("device %q unhealthy at boot: %+v", d.DeviceID, d)
		}
	}
	// The DVFS-bounded SKU advertises a trimmed grid.
	if inv.Devices[1].Grids["full"] >= inv.Devices[2].Grids["full"] {
		t.Error("bounded device does not advertise a trimmed full grid")
	}

	// Pinned fleet predict.
	body := `{"profile": {"sp": 4e9, "dram_words": 5e7}, "setting_id": "max", "device": "tk1-lowpower-sku"}`
	pw := post(t, h, "/v1/fleet/predict", body)
	if pw.Code != http.StatusBadRequest {
		// max core (852) is outside the SKU's bounds only for sweeps;
		// predict answers any tabled setting.
		if pw.Code != http.StatusOK {
			t.Fatalf("pinned predict = %d: %s", pw.Code, pw.Body)
		}
	}
	var fp serve.FleetPredictResponse
	if err := json.Unmarshal(pw.Body.Bytes(), &fp); err != nil {
		t.Fatal(err)
	}
	if fp.DeviceID != "tk1-lowpower-sku" {
		t.Errorf("pinned predict served by %q", fp.DeviceID)
	}

	// Unrouted fleet predict is deterministic and names its device.
	free := `{"profile": {"sp": 4e9}, "setting_id": "S2"}`
	a, b := post(t, h, "/v1/fleet/predict", free), post(t, h, "/v1/fleet/predict", free)
	if a.Code != http.StatusOK {
		t.Fatalf("fleet predict = %d: %s", a.Code, a.Body)
	}
	if a.Body.String() != b.Body.String() {
		t.Error("fleet predict not deterministic across identical requests")
	}
	var fr serve.FleetPredictResponse
	json.Unmarshal(a.Body.Bytes(), &fr)
	if fr.DeviceID == "" {
		t.Error("fleet predict did not name its device")
	}

	// Unknown pinned device: 404 naming the device in the error body.
	uw := post(t, h, "/v1/fleet/predict", `{"profile": {"sp": 1e9}, "setting_id": "max", "device": "nope"}`)
	if uw.Code != http.StatusNotFound {
		t.Fatalf("unknown device = %d, want 404", uw.Code)
	}
	if !strings.Contains(uw.Body.String(), `"device_id": "nope"`) {
		t.Errorf("404 body %s does not name the device", uw.Body)
	}

	// Per-device calibration: ?device selects, default is the first ID,
	// unknown 404s.
	cw := get(t, h, "/v1/calibration?device=tk1-binned-hot")
	var cal serve.CalibrationResponse
	if err := json.Unmarshal(cw.Body.Bytes(), &cal); err != nil {
		t.Fatal(err)
	}
	if cal.DeviceID != "tk1-binned-hot" {
		t.Errorf("calibration device_id = %q", cal.DeviceID)
	}
	var calDefault serve.CalibrationResponse
	json.Unmarshal(get(t, h, "/v1/calibration").Body.Bytes(), &calDefault)
	if calDefault.DeviceID != "tk1-binned-hot" {
		t.Errorf("default calibration device = %q, want first sorted ID", calDefault.DeviceID)
	}
	if w := get(t, h, "/v1/calibration?device=nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown calibration device = %d, want 404", w.Code)
	}

	// Fleet metrics carry device labels.
	post(t, h, "/v1/autotune", `{"profile": {"dp_fma": 2e8, "dram_words": 5e7}, "occupancy": 0.9}`)
	metrics := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"energyd_fleet_devices 3",
		`energyd_breaker_state{device="tk1-reference"} 0`,
		`energyd_calibration_coverage_fraction{device="tk1-lowpower-sku"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, `energyd_autotune_cache_misses_total{device=`) {
		t.Error("/metrics missing per-device cache miss counters")
	}
}
