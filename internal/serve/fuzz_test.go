package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
)

// The fuzz targets drive raw bytes through the energyd JSON decoders and
// hold two invariants over /v1/predict and /v1/autotune:
//
//  1. the handler never panics, whatever the body;
//  2. a body the wire decoder rejects is never answered 2xx, and every
//     response — success or error — is itself valid JSON.
//
// The seed corpus mixes handwritten edge cases with request bodies
// derived from cmd/energyd/testdata/samples.csv, so the mutator starts
// from realistic calibration-shaped profiles.

// fuzzHandler builds one fixture-calibrated server for a fuzz target.
// The sweep timeout is tightened so mutated-but-valid autotune bodies
// cannot pin a fuzz worker to the full 30 s production default.
func fuzzHandler(f *testing.F) http.Handler {
	f.Helper()
	cal, err := serve.FixtureCalibration()
	if err != nil {
		f.Fatalf("fixture calibration: %v", err)
	}
	srv := serve.New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, serve.Options{
		SweepTimeout: 2 * time.Second,
	})
	return srv.Handler()
}

// csvSeedBodies turns the first few rows of the energyd sample fixture
// into request bodies: the profile columns map one-to-one onto the wire
// field names, which is exactly the correspondence ProfileJSON documents.
func csvSeedBodies(tb testing.TB, withSetting bool) []string {
	tb.Helper()
	raw, err := os.ReadFile("../../cmd/energyd/testdata/samples.csv")
	if err != nil {
		tb.Fatalf("reading sample fixture: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var bodies []string
	for _, line := range lines[1:] {
		if len(bodies) == 4 {
			break
		}
		c := strings.Split(line, ",")
		if len(c) != 15 {
			tb.Fatalf("sample fixture row has %d columns, want 15: %q", len(c), line)
		}
		profile := fmt.Sprintf(`{"sp": %s, "dp_fma": %s, "dp_add": %s, "dp_mul": %s, "int": %s, "shared_words": %s, "l1_words": %s, "l2_words": %s, "dram_words": %s}`,
			c[4], c[5], c[6], c[7], c[8], c[9], c[10], c[11], c[12])
		if withSetting {
			bodies = append(bodies, fmt.Sprintf(
				`{"profile": %s, "setting": {"core_mhz": %s, "mem_mhz": %s}, "time_s": %s}`,
				profile, c[0], c[2], c[13]))
		} else {
			bodies = append(bodies, fmt.Sprintf(`{"profile": %s}`, profile))
		}
	}
	return bodies
}

// checkInvariants posts body to path and enforces the fuzz contract.
// The decode mirror below reproduces the wire decoder's strictness
// (unknown fields rejected); the size cap is deliberately absent — an
// oversized body that decodes fine here must simply not be 2xx there.
func checkInvariants(t *testing.T, h http.Handler, path, body string, dst any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)

	if rr.Code < 100 || rr.Code > 599 {
		t.Fatalf("%s returned impossible status %d for body %q", path, rr.Code, body)
	}
	if !json.Valid(rr.Body.Bytes()) {
		t.Fatalf("%s returned non-JSON body for %q: %q", path, body, rr.Body.String())
	}
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil && rr.Code >= 200 && rr.Code < 300 {
		t.Fatalf("%s answered %d to a body its decoder rejects (%v): %q", path, rr.Code, err, body)
	}
	if rr.Code >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s error status %d without an error body: %q", path, rr.Code, rr.Body.String())
		}
	}
}

func FuzzPredictRequest(f *testing.F) {
	h := fuzzHandler(f)
	for _, body := range csvSeedBodies(f, true) {
		f.Add(body)
	}
	for _, body := range []string{
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}, "setting_id": "max"}`,
		`{"profile": {"dp_fma": 1e9}, "setting_id": "S3", "occupancy": 0.5}`,
		`{"profile": {"dp_fma": 1e9}, "setting": {"core_mhz": 564, "mem_mhz": 792}}`,
		`{"profile": {"dp_fma": 1e9}, "setting_id": "max", "setting": {"core_mhz": 564, "mem_mhz": 792}}`,
		`{"profile": {"dp_fma": 1e9}, "setting_id": "max", "time_s": -1}`,
		`{"profile": {"dp_fma": -5}, "setting_id": "max"}`,
		`{"profile": {}, "setting_id": "max"}`,
		`{"profile": {"dp_fma": 1e9}, "setting_id": "nope"}`,
		`{"profile": {"dp_fma": 1e9}, "bogus_field": 1}`,
		`{"profile": {"dp_fma": 1e309}, "setting_id": "max"}`,
		`{"profile"`,
		`null`,
		``,
	} {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req serve.PredictRequest
		checkInvariants(t, h, "/v1/predict", body, &req)
	})
}

func FuzzAutotuneRequest(f *testing.F) {
	h := fuzzHandler(f)
	for _, body := range csvSeedBodies(f, false) {
		f.Add(body)
	}
	for _, body := range []string{
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}}`,
		`{"profile": {"dp_fma": 1e9}, "grid": "full", "timeout_s": 0.5}`,
		`{"profile": {"dp_fma": 1e9}, "grid": "nonsense"}`,
		`{"profile": {"dp_fma": 1e9}, "occupancy": 2}`,
		`{"profile": {"int": 5e8, "l2_words": 1e8}, "timeout_s": 0.01}`,
		`{"profile": {"dp_fma": 1e15}}`,
		`{"profile": {}}`,
		`{"profile": {"dp_fma": 1e9}, "unknown": true}`,
		`[1, 2, 3]`,
		`{`,
	} {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req serve.AutotuneRequest
		checkInvariants(t, h, "/v1/autotune", body, &req)
	})
}
