package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics is a hand-rolled Prometheus registry: the daemon exposes the
// standard text exposition format (version 0.0.4) without pulling in a
// client library. It tracks per-endpoint request counts by status code,
// a fixed-bucket latency histogram, the autotune cache hit/miss
// counters keyed by device, and an in-flight request gauge. All methods
// are safe for concurrent use.
type metrics struct {
	mu        sync.Mutex
	inflight  int                         // guarded by mu
	endpoints map[string]*endpointMetrics // guarded by mu
	// Per-device cache counters. The legacy single-device node uses the
	// empty key, which prints as the historic unlabeled lines.
	hits     map[string]uint64 // guarded by mu
	misses   map[string]uint64 // guarded by mu
	degraded map[string]uint64 // guarded by mu
	// Per-device energy ledgers, in joules: sweepJ integrates the
	// measured energy of every candidate a fresh sweep burned through;
	// answeredJ integrates the energy of the picks actually returned to
	// clients. Their ratio — energy answered per joule of sweep work —
	// is the cache's leverage: answers served from cache or joined
	// flights add to the numerator without new sweep cost.
	sweepJ    map[string]float64 // guarded by mu
	answeredJ map[string]float64 // guarded by mu
}

// latencyBuckets are the histogram upper bounds in seconds. Prediction
// is sub-millisecond; a cold full-grid autotune sweep can take seconds.
var latencyBuckets = []float64{0.0005, 0.0025, 0.01, 0.05, 0.25, 1, 5}

type endpointMetrics struct {
	codes   map[int]uint64
	buckets []uint64 // cumulative counts per latencyBuckets entry
	sum     float64  // total observed seconds
	count   uint64
}

func newMetrics() *metrics {
	return &metrics{
		endpoints: make(map[string]*endpointMetrics),
		hits:      make(map[string]uint64),
		misses:    make(map[string]uint64),
		degraded:  make(map[string]uint64),
		sweepJ:    make(map[string]float64),
		answeredJ: make(map[string]float64),
	}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointMetrics{codes: make(map[int]uint64), buckets: make([]uint64, len(latencyBuckets))}
		m.endpoints[endpoint] = e
	}
	e.codes[code]++
	for i, le := range latencyBuckets {
		if seconds <= le {
			e.buckets[i]++
		}
	}
	e.sum += seconds
	e.count++
}

func (m *metrics) addInflight(d int) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

func (m *metrics) cacheHit(dev string) {
	m.mu.Lock()
	m.hits[dev]++
	m.mu.Unlock()
}

func (m *metrics) cacheMiss(dev string) {
	m.mu.Lock()
	m.misses[dev]++
	m.mu.Unlock()
}

// degradedHit records one autotune request answered from stale cache
// while the device's circuit breaker was open.
func (m *metrics) degradedHit(dev string) {
	m.mu.Lock()
	m.degraded[dev]++
	m.mu.Unlock()
}

// addSweepJoules charges one device's ledger with the measured energy a
// fresh sweep burned integrating its candidates.
func (m *metrics) addSweepJoules(dev string, j float64) {
	m.mu.Lock()
	m.sweepJ[dev] += j
	m.mu.Unlock()
}

// addAnsweredJoules credits one device's ledger with the energy of a
// pick returned to a client (fresh, cached or degraded alike).
func (m *metrics) addAnsweredJoules(dev string, j float64) {
	m.mu.Lock()
	m.answeredJ[dev] += j
	m.mu.Unlock()
}

// countersSnapshot is a deep copy of the registry's counter maps, taken
// under one lock acquisition so the numbers are mutually consistent.
type countersSnapshot struct {
	endpoints map[string]map[int]uint64 // endpoint -> status code -> count
	hits      map[string]uint64
	misses    map[string]uint64
	degraded  map[string]uint64
	sweepJ    map[string]float64
	answeredJ map[string]float64
}

// snapshot copies every counter for the /v1/stats endpoint (and the
// load-harness report built on it).
func (m *metrics) snapshot() countersSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := countersSnapshot{
		endpoints: make(map[string]map[int]uint64, len(m.endpoints)),
		hits:      copyCounter(m.hits),
		misses:    copyCounter(m.misses),
		degraded:  copyCounter(m.degraded),
		sweepJ:    copyLedger(m.sweepJ),
		answeredJ: copyLedger(m.answeredJ),
	}
	for ep, e := range m.endpoints {
		codes := make(map[int]uint64, len(e.codes))
		for c, n := range e.codes {
			codes[c] = n
		}
		s.endpoints[ep] = codes
	}
	return s
}

func copyCounter(c map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

func copyLedger(c map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// cacheCounts returns the fleet-wide cache counters (exposed for tests).
func (m *metrics) cacheCounts() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sumCounter(m.hits), sumCounter(m.misses)
}

// degradedCount returns the fleet-wide degraded-serving counter
// (exposed for tests).
func (m *metrics) degradedCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sumCounter(m.degraded)
}

func sumCounter(c map[string]uint64) uint64 {
	var total uint64
	for _, v := range c {
		total += v
	}
	return total
}

// writeText renders the registry in the Prometheus text format, with
// deterministic ordering so the output is diffable.
func (m *metrics) writeText(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP energyd_requests_total Completed HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE energyd_requests_total counter")
	for _, ep := range sortedKeys(m.endpoints) {
		e := m.endpoints[ep]
		codes := make([]int, 0, len(e.codes))
		for c := range e.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "energyd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, e.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP energyd_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE energyd_request_duration_seconds histogram")
	for _, ep := range sortedKeys(m.endpoints) {
		e := m.endpoints[ep]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "energyd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, fmt.Sprintf("%g", le), e.buckets[i])
		}
		fmt.Fprintf(w, "energyd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, e.count)
		fmt.Fprintf(w, "energyd_request_duration_seconds_sum{endpoint=%q} %g\n", ep, e.sum)
		fmt.Fprintf(w, "energyd_request_duration_seconds_count{endpoint=%q} %d\n", ep, e.count)
	}

	// Cache counters: the fleet-wide total first (the pre-fleet line, so
	// single-device scrapes are byte-identical), then per named device.
	counter := func(name, help string, c map[string]uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, sumCounter(c))
		devs := make([]string, 0, len(c))
		for d := range c {
			if d != "" {
				devs = append(devs, d)
			}
		}
		sort.Strings(devs)
		for _, d := range devs {
			fmt.Fprintf(w, "%s{device=%q} %d\n", name, d, c[d])
		}
	}
	counter("energyd_autotune_cache_hits_total",
		"Autotune requests answered from the sweep cache (including joined in-flight sweeps).", m.hits)
	counter("energyd_autotune_cache_misses_total",
		"Autotune requests that ran a fresh sweep.", m.misses)
	counter("energyd_autotune_degraded_total",
		"Autotune requests served stale from cache while the breaker was open.", m.degraded)

	fmt.Fprintln(w, "# HELP energyd_inflight_requests Requests currently being served.")
	fmt.Fprintln(w, "# TYPE energyd_inflight_requests gauge")
	fmt.Fprintf(w, "energyd_inflight_requests %d\n", m.inflight)
}

func sortedKeys(m map[string]*endpointMetrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
