package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics is a hand-rolled Prometheus registry: the daemon exposes the
// standard text exposition format (version 0.0.4) without pulling in a
// client library. It tracks per-endpoint request counts by status code,
// a fixed-bucket latency histogram, the autotune cache hit/miss
// counters, and an in-flight request gauge. All methods are safe for
// concurrent use.
type metrics struct {
	mu        sync.Mutex
	inflight  int
	endpoints map[string]*endpointMetrics
	hits      uint64
	misses    uint64
	degraded  uint64
}

// latencyBuckets are the histogram upper bounds in seconds. Prediction
// is sub-millisecond; a cold full-grid autotune sweep can take seconds.
var latencyBuckets = []float64{0.0005, 0.0025, 0.01, 0.05, 0.25, 1, 5}

type endpointMetrics struct {
	codes   map[int]uint64
	buckets []uint64 // cumulative counts per latencyBuckets entry
	sum     float64  // total observed seconds
	count   uint64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointMetrics{codes: make(map[int]uint64), buckets: make([]uint64, len(latencyBuckets))}
		m.endpoints[endpoint] = e
	}
	e.codes[code]++
	for i, le := range latencyBuckets {
		if seconds <= le {
			e.buckets[i]++
		}
	}
	e.sum += seconds
	e.count++
}

func (m *metrics) addInflight(d int) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

func (m *metrics) cacheHit() {
	m.mu.Lock()
	m.hits++
	m.mu.Unlock()
}

func (m *metrics) cacheMiss() {
	m.mu.Lock()
	m.misses++
	m.mu.Unlock()
}

// degradedHit records one autotune request answered from stale cache
// while the circuit breaker was open.
func (m *metrics) degradedHit() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

// snapshot returns the cache counters (exposed for tests).
func (m *metrics) cacheCounts() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// degradedCount returns the degraded-serving counter (exposed for tests).
func (m *metrics) degradedCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// writeText renders the registry in the Prometheus text format, with
// deterministic ordering so the output is diffable.
func (m *metrics) writeText(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP energyd_requests_total Completed HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE energyd_requests_total counter")
	for _, ep := range sortedKeys(m.endpoints) {
		e := m.endpoints[ep]
		codes := make([]int, 0, len(e.codes))
		for c := range e.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "energyd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, e.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP energyd_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE energyd_request_duration_seconds histogram")
	for _, ep := range sortedKeys(m.endpoints) {
		e := m.endpoints[ep]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "energyd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, fmt.Sprintf("%g", le), e.buckets[i])
		}
		fmt.Fprintf(w, "energyd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, e.count)
		fmt.Fprintf(w, "energyd_request_duration_seconds_sum{endpoint=%q} %g\n", ep, e.sum)
		fmt.Fprintf(w, "energyd_request_duration_seconds_count{endpoint=%q} %d\n", ep, e.count)
	}

	fmt.Fprintln(w, "# HELP energyd_autotune_cache_hits_total Autotune requests answered from the sweep cache (including joined in-flight sweeps).")
	fmt.Fprintln(w, "# TYPE energyd_autotune_cache_hits_total counter")
	fmt.Fprintf(w, "energyd_autotune_cache_hits_total %d\n", m.hits)
	fmt.Fprintln(w, "# HELP energyd_autotune_cache_misses_total Autotune requests that ran a fresh sweep.")
	fmt.Fprintln(w, "# TYPE energyd_autotune_cache_misses_total counter")
	fmt.Fprintf(w, "energyd_autotune_cache_misses_total %d\n", m.misses)
	fmt.Fprintln(w, "# HELP energyd_autotune_degraded_total Autotune requests served stale from cache while the breaker was open.")
	fmt.Fprintln(w, "# TYPE energyd_autotune_degraded_total counter")
	fmt.Fprintf(w, "energyd_autotune_degraded_total %d\n", m.degraded)
	fmt.Fprintln(w, "# HELP energyd_inflight_requests Requests currently being served.")
	fmt.Fprintln(w, "# TYPE energyd_inflight_requests gauge")
	fmt.Fprintf(w, "energyd_inflight_requests %d\n", m.inflight)
}

func sortedKeys(m map[string]*endpointMetrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
