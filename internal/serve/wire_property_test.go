package serve_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/units"
)

// The unit-typed wire structs must be invisible on the wire: every field
// that became a units.* quantity marshals byte-for-byte like the raw
// float64 it replaced, tags, omitempty and all. The raw* mirrors below
// restate the wire types with plain float64 fields; the tests encode the
// same values through both and demand identical bytes.

type rawProfile struct {
	SP          float64 `json:"sp,omitempty"`
	DPFMA       float64 `json:"dp_fma,omitempty"`
	DPAdd       float64 `json:"dp_add,omitempty"`
	DPMul       float64 `json:"dp_mul,omitempty"`
	Int         float64 `json:"int,omitempty"`
	SharedWords float64 `json:"shared_words,omitempty"`
	L1Words     float64 `json:"l1_words,omitempty"`
	L2Words     float64 `json:"l2_words,omitempty"`
	DRAMWords   float64 `json:"dram_words,omitempty"`
}

type rawSetting struct {
	CoreMHz float64 `json:"core_mhz"`
	MemMHz  float64 `json:"mem_mhz"`
}

type rawPredictRequest struct {
	Profile   rawProfile  `json:"profile"`
	Setting   *rawSetting `json:"setting,omitempty"`
	SettingID string      `json:"setting_id,omitempty"`
	TimeS     float64     `json:"time_s,omitempty"`
	Occupancy float64     `json:"occupancy,omitempty"`
}

type rawAutotuneRequest struct {
	Profile   rawProfile `json:"profile"`
	Occupancy float64    `json:"occupancy,omitempty"`
	Grid      string     `json:"grid,omitempty"`
	TimeoutS  float64    `json:"timeout_s,omitempty"`
}

type rawSettingInfo struct {
	CoreMHz float64 `json:"core_mhz"`
	CoreMV  float64 `json:"core_mv"`
	MemMHz  float64 `json:"mem_mhz"`
	MemMV   float64 `json:"mem_mv"`
}

type rawParts struct {
	SP       float64 `json:"sp"`
	DP       float64 `json:"dp"`
	Int      float64 `json:"int"`
	SM       float64 `json:"sm"`
	L2       float64 `json:"l2"`
	DRAM     float64 `json:"dram"`
	Constant float64 `json:"constant"`
	Compute  float64 `json:"compute"`
	Data     float64 `json:"data"`
}

type rawPredictResponse struct {
	Setting     rawSettingInfo `json:"setting"`
	TimeS       float64        `json:"time_s"`
	PredictedJ  float64        `json:"predicted_j"`
	Parts       rawParts       `json:"parts"`
	ConstPowerW float64        `json:"const_power_w"`
}

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	return b
}

// TestWireEncodingMatchesRawFloats encodes hand-built typed and raw
// values — including zero fields, so omitempty parity is exercised —
// and compares the bytes.
func TestWireEncodingMatchesRawFloats(t *testing.T) {
	typedReq := serve.PredictRequest{
		Profile:   serve.ProfileJSON{DPFMA: 1.5e9, DPAdd: 3e8, DRAMWords: 5e7},
		Setting:   &serve.SettingJSON{CoreMHz: 564, MemMHz: 792},
		TimeS:     0.22,
		Occupancy: 0.25,
	}
	rawReq := rawPredictRequest{
		Profile:   rawProfile{DPFMA: 1.5e9, DPAdd: 3e8, DRAMWords: 5e7},
		Setting:   &rawSetting{CoreMHz: 564, MemMHz: 792},
		TimeS:     0.22,
		Occupancy: 0.25,
	}
	if got, want := mustJSON(t, typedReq), mustJSON(t, rawReq); !bytes.Equal(got, want) {
		t.Errorf("PredictRequest encoding drifted:\n typed %s\n raw   %s", got, want)
	}

	typedResp := serve.PredictResponse{
		Setting:     serve.SettingInfo{CoreMHz: 852, CoreMV: 1030, MemMHz: 924, MemMV: 1010},
		TimeS:       0.2,
		PredictedJ:  1.494,
		Parts:       serve.PartsJSON{DP: 0.8, DRAM: 0.3, Constant: 0.394, Compute: 0.8, Data: 0.3},
		ConstPowerW: units.Watt(1.97),
	}
	rawResp := rawPredictResponse{
		Setting:     rawSettingInfo{CoreMHz: 852, CoreMV: 1030, MemMHz: 924, MemMV: 1010},
		TimeS:       0.2,
		PredictedJ:  1.494,
		Parts:       rawParts{DP: 0.8, DRAM: 0.3, Constant: 0.394, Compute: 0.8, Data: 0.3},
		ConstPowerW: 1.97,
	}
	if got, want := mustJSON(t, typedResp), mustJSON(t, rawResp); !bytes.Equal(got, want) {
		t.Errorf("PredictResponse encoding drifted:\n typed %s\n raw   %s", got, want)
	}

	typedAt := serve.AutotuneRequest{
		Profile:  serve.ProfileJSON{Int: 5e8, L2Words: 1e8},
		Grid:     "full",
		TimeoutS: 0.5,
	}
	rawAt := rawAutotuneRequest{
		Profile:  rawProfile{Int: 5e8, L2Words: 1e8},
		Grid:     "full",
		TimeoutS: 0.5,
	}
	if got, want := mustJSON(t, typedAt), mustJSON(t, rawAt); !bytes.Equal(got, want) {
		t.Errorf("AutotuneRequest encoding drifted:\n typed %s\n raw   %s", got, want)
	}
}

// TestWireRoundTripMatchesRawFloats pushes the fuzz seed fixtures —
// bodies derived from cmd/energyd/testdata plus the handwritten valid
// cases — through decode→encode on both the typed and raw mirrors and
// demands byte-identical output, proving the unit-type migration left
// the wire format untouched in both directions.
func TestWireRoundTripMatchesRawFloats(t *testing.T) {
	decode := func(body string, dst any) error {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		return dec.Decode(dst)
	}
	predictBodies := append(csvSeedBodies(t, true),
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}, "setting_id": "max"}`,
		`{"profile": {"dp_fma": 1e9}, "setting_id": "S3", "occupancy": 0.5}`,
	)
	for _, body := range predictBodies {
		var typed serve.PredictRequest
		var raw rawPredictRequest
		if err := decode(body, &typed); err != nil {
			t.Fatalf("typed decode of fixture %q: %v", body, err)
		}
		if err := decode(body, &raw); err != nil {
			t.Fatalf("raw decode of fixture %q: %v", body, err)
		}
		if got, want := mustJSON(t, typed), mustJSON(t, raw); !bytes.Equal(got, want) {
			t.Errorf("fixture %q round-trips differently:\n typed %s\n raw   %s", body, got, want)
		}
	}
	autotuneBodies := append(csvSeedBodies(t, false),
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}}`,
		`{"profile": {"dp_fma": 1e9}, "grid": "full", "timeout_s": 0.5}`,
	)
	for _, body := range autotuneBodies {
		var typed serve.AutotuneRequest
		var raw rawAutotuneRequest
		if err := decode(body, &typed); err != nil {
			t.Fatalf("typed decode of fixture %q: %v", body, err)
		}
		if err := decode(body, &raw); err != nil {
			t.Fatalf("raw decode of fixture %q: %v", body, err)
		}
		if got, want := mustJSON(t, typed), mustJSON(t, raw); !bytes.Equal(got, want) {
			t.Errorf("fixture %q round-trips differently:\n typed %s\n raw   %s", body, got, want)
		}
	}
}
