package serve_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// The unit-typed wire structs must be invisible on the wire: every field
// that became a units.* quantity marshals byte-for-byte like the raw
// float64 it replaced, tags, omitempty and all. The raw* mirrors below
// restate the wire types with plain float64 fields; the tests encode the
// same values through both and demand identical bytes.

type rawProfile struct {
	SP          float64 `json:"sp,omitempty"`
	DPFMA       float64 `json:"dp_fma,omitempty"`
	DPAdd       float64 `json:"dp_add,omitempty"`
	DPMul       float64 `json:"dp_mul,omitempty"`
	Int         float64 `json:"int,omitempty"`
	SharedWords float64 `json:"shared_words,omitempty"`
	L1Words     float64 `json:"l1_words,omitempty"`
	L2Words     float64 `json:"l2_words,omitempty"`
	DRAMWords   float64 `json:"dram_words,omitempty"`
}

type rawSetting struct {
	CoreMHz float64 `json:"core_mhz"`
	MemMHz  float64 `json:"mem_mhz"`
}

type rawPredictRequest struct {
	Profile   rawProfile  `json:"profile"`
	Setting   *rawSetting `json:"setting,omitempty"`
	SettingID string      `json:"setting_id,omitempty"`
	TimeS     float64     `json:"time_s,omitempty"`
	Occupancy float64     `json:"occupancy,omitempty"`
}

type rawAutotuneRequest struct {
	Profile   rawProfile `json:"profile"`
	Occupancy float64    `json:"occupancy,omitempty"`
	Grid      string     `json:"grid,omitempty"`
	TimeoutS  float64    `json:"timeout_s,omitempty"`
}

type rawSettingInfo struct {
	CoreMHz float64 `json:"core_mhz"`
	CoreMV  float64 `json:"core_mv"`
	MemMHz  float64 `json:"mem_mhz"`
	MemMV   float64 `json:"mem_mv"`
}

type rawParts struct {
	SP       float64 `json:"sp"`
	DP       float64 `json:"dp"`
	Int      float64 `json:"int"`
	SM       float64 `json:"sm"`
	L2       float64 `json:"l2"`
	DRAM     float64 `json:"dram"`
	Constant float64 `json:"constant"`
	Compute  float64 `json:"compute"`
	Data     float64 `json:"data"`
}

type rawPredictResponse struct {
	Setting     rawSettingInfo `json:"setting"`
	TimeS       float64        `json:"time_s"`
	PredictedJ  float64        `json:"predicted_j"`
	Parts       rawParts       `json:"parts"`
	ConstPowerW float64        `json:"const_power_w"`
}

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	return b
}

// TestWireEncodingMatchesRawFloats encodes hand-built typed and raw
// values — including zero fields, so omitempty parity is exercised —
// and compares the bytes.
func TestWireEncodingMatchesRawFloats(t *testing.T) {
	typedReq := serve.PredictRequest{
		Profile:   serve.ProfileJSON{DPFMA: 1.5e9, DPAdd: 3e8, DRAMWords: 5e7},
		Setting:   &serve.SettingJSON{CoreMHz: 564, MemMHz: 792},
		TimeS:     0.22,
		Occupancy: 0.25,
	}
	rawReq := rawPredictRequest{
		Profile:   rawProfile{DPFMA: 1.5e9, DPAdd: 3e8, DRAMWords: 5e7},
		Setting:   &rawSetting{CoreMHz: 564, MemMHz: 792},
		TimeS:     0.22,
		Occupancy: 0.25,
	}
	if got, want := mustJSON(t, typedReq), mustJSON(t, rawReq); !bytes.Equal(got, want) {
		t.Errorf("PredictRequest encoding drifted:\n typed %s\n raw   %s", got, want)
	}

	typedResp := serve.PredictResponse{
		Setting:     serve.SettingInfo{CoreMHz: 852, CoreMV: 1030, MemMHz: 924, MemMV: 1010},
		TimeS:       0.2,
		PredictedJ:  1.494,
		Parts:       serve.PartsJSON{DP: 0.8, DRAM: 0.3, Constant: 0.394, Compute: 0.8, Data: 0.3},
		ConstPowerW: units.Watt(1.97),
	}
	rawResp := rawPredictResponse{
		Setting:     rawSettingInfo{CoreMHz: 852, CoreMV: 1030, MemMHz: 924, MemMV: 1010},
		TimeS:       0.2,
		PredictedJ:  1.494,
		Parts:       rawParts{DP: 0.8, DRAM: 0.3, Constant: 0.394, Compute: 0.8, Data: 0.3},
		ConstPowerW: 1.97,
	}
	if got, want := mustJSON(t, typedResp), mustJSON(t, rawResp); !bytes.Equal(got, want) {
		t.Errorf("PredictResponse encoding drifted:\n typed %s\n raw   %s", got, want)
	}

	typedAt := serve.AutotuneRequest{
		Profile:  serve.ProfileJSON{Int: 5e8, L2Words: 1e8},
		Grid:     "full",
		TimeoutS: 0.5,
	}
	rawAt := rawAutotuneRequest{
		Profile:  rawProfile{Int: 5e8, L2Words: 1e8},
		Grid:     "full",
		TimeoutS: 0.5,
	}
	if got, want := mustJSON(t, typedAt), mustJSON(t, rawAt); !bytes.Equal(got, want) {
		t.Errorf("AutotuneRequest encoding drifted:\n typed %s\n raw   %s", got, want)
	}
}

// TestWireRoundTripMatchesRawFloats pushes the fuzz seed fixtures —
// bodies derived from cmd/energyd/testdata plus the handwritten valid
// cases — through decode→encode on both the typed and raw mirrors and
// demands byte-identical output, proving the unit-type migration left
// the wire format untouched in both directions.
func TestWireRoundTripMatchesRawFloats(t *testing.T) {
	decode := func(body string, dst any) error {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		return dec.Decode(dst)
	}
	predictBodies := append(csvSeedBodies(t, true),
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}, "setting_id": "max"}`,
		`{"profile": {"dp_fma": 1e9}, "setting_id": "S3", "occupancy": 0.5}`,
	)
	for _, body := range predictBodies {
		var typed serve.PredictRequest
		var raw rawPredictRequest
		if err := decode(body, &typed); err != nil {
			t.Fatalf("typed decode of fixture %q: %v", body, err)
		}
		if err := decode(body, &raw); err != nil {
			t.Fatalf("raw decode of fixture %q: %v", body, err)
		}
		if got, want := mustJSON(t, typed), mustJSON(t, raw); !bytes.Equal(got, want) {
			t.Errorf("fixture %q round-trips differently:\n typed %s\n raw   %s", body, got, want)
		}
	}
	autotuneBodies := append(csvSeedBodies(t, false),
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}}`,
		`{"profile": {"dp_fma": 1e9}, "grid": "full", "timeout_s": 0.5}`,
	)
	for _, body := range autotuneBodies {
		var typed serve.AutotuneRequest
		var raw rawAutotuneRequest
		if err := decode(body, &typed); err != nil {
			t.Fatalf("typed decode of fixture %q: %v", body, err)
		}
		if err := decode(body, &raw); err != nil {
			t.Fatalf("raw decode of fixture %q: %v", body, err)
		}
		if got, want := mustJSON(t, typed), mustJSON(t, raw); !bytes.Equal(got, want) {
			t.Errorf("fixture %q round-trips differently:\n typed %s\n raw   %s", body, got, want)
		}
	}
}

// The fleet refactor added device_id to the calibration response and
// error bodies, tagged omitempty. The mirrors below restate those wire
// types exactly as they were BEFORE the fleet existed — no device_id
// anywhere — and the tests prove a single-device server still emits
// those pre-fleet bytes.

type rawModelJSON struct {
	SPpJ   float64 `json:"sp_pj_v2"`
	DPpJ   float64 `json:"dp_pj_v2"`
	IntpJ  float64 `json:"int_pj_v2"`
	SMpJ   float64 `json:"sm_pj_v2"`
	L2pJ   float64 `json:"l2_pj_v2"`
	DRAMpJ float64 `json:"dram_pj_v2"`
	C1Proc float64 `json:"c1_proc_w_v"`
	C1Mem  float64 `json:"c1_mem_w_v"`
	PMisc  float64 `json:"p_misc_w"`
}

type rawTableIRow struct {
	Type    string         `json:"type"`
	Setting rawSettingInfo `json:"setting"`
	SPpJ    float64        `json:"sp_pj"`
	DPpJ    float64        `json:"dp_pj"`
	IntpJ   float64        `json:"int_pj"`
	SMpJ    float64        `json:"sm_pj"`
	L2pJ    float64        `json:"l2_pj"`
	DRAMpJ  float64        `json:"dram_pj"`
	ConstW  float64        `json:"const_w"`
}

type rawCVSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean_pct"`
	Stddev float64 `json:"stddev_pct"`
	Min    float64 `json:"min_pct"`
	Max    float64 `json:"max_pct"`
}

type rawLegacyCalibrationResponse struct {
	Samples int            `json:"samples"`
	Model   rawModelJSON   `json:"model"`
	TableI  []rawTableIRow `json:"table_i"`
	Holdout rawCVSummary   `json:"holdout"`
	KFold   rawCVSummary   `json:"kfold_16"`
	Grids   map[string]int `json:"grids"`
}

// indentJSON encodes v exactly the way the handlers do (2-space indent,
// trailing newline).
func indentJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	return buf.Bytes()
}

// TestLegacyCalibrationWireUnchanged fetches a live single-device
// /v1/calibration body, decodes it into the pre-fleet mirror with
// unknown fields disallowed (so a leaked device_id fails loudly), and
// re-encodes the mirror: the bytes must match the live body exactly.
func TestLegacyCalibrationWireUnchanged(t *testing.T) {
	live := get(t, legacyServer(t).Handler(), "/v1/calibration").Body.Bytes()

	dec := json.NewDecoder(bytes.NewReader(live))
	dec.DisallowUnknownFields()
	var mirror rawLegacyCalibrationResponse
	if err := dec.Decode(&mirror); err != nil {
		t.Fatalf("legacy calibration body no longer decodes as the pre-fleet wire type: %v\nbody: %s", err, live)
	}
	if got := indentJSON(t, mirror); !bytes.Equal(got, live) {
		t.Errorf("legacy calibration bytes drifted:\n live   %s\n mirror %s", live, got)
	}
	if bytes.Contains(live, []byte("device_id")) {
		t.Error("single-device calibration body grew a device_id field")
	}
}

// TestErrorBodyWireUnchanged proves the typed ErrorJSON struct emits the
// same bytes as the pre-fleet map[string]string{"error": msg} in legacy
// mode, and that fleet errors add device_id without disturbing the error
// key.
func TestErrorBodyWireUnchanged(t *testing.T) {
	h := legacyServer(t).Handler()
	for path, body := range map[string]string{
		"/v1/predict":  `{"profile": {"sp": 1e9}}`,
		"/v1/autotune": `{"profile": {"sp": 1e9}, "grid": "nope"}`,
		"/v1/predict ": `not json`,
	} {
		w := post(t, h, strings.TrimSpace(path), body)
		if w.Code/100 != 4 {
			t.Fatalf("%s %q = %d, want 4xx", path, body, w.Code)
		}
		var probe struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &probe); err != nil || probe.Error == "" {
			t.Fatalf("%s error body %s unparseable: %v", path, w.Body, err)
		}
		oldBytes := indentJSON(t, map[string]string{"error": probe.Error})
		if !bytes.Equal(w.Body.Bytes(), oldBytes) {
			t.Errorf("%s error body drifted from the pre-fleet encoding:\n live %s\n old  %s", path, w.Body, oldBytes)
		}
	}
}

func legacyServer(t *testing.T) *serve.Server {
	t.Helper()
	cal, err := serve.FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, serve.Options{})
}
