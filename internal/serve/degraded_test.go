package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/tegra"
)

// TestDegradedModeServesFromCache is the acceptance scenario: with the
// breaker forced open, a previously swept workload is still answered —
// from cache, flagged degraded — while /readyz flips to 503 and
// /healthz stays 200.
func TestDegradedModeServesFromCache(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	body := `{"profile": {"dp_fma": 2e8, "int": 1e8, "dram_words": 5e7}, "occupancy": 0.9}`

	// Populate the cache while healthy.
	if w := postJSON(t, h, "/v1/autotune", body); w.Code != http.StatusOK {
		t.Fatalf("warm-up autotune = %d: %s", w.Code, w.Body)
	}
	var fresh AutotuneResponse
	json.Unmarshal(postJSON(t, h, "/v1/autotune", body).Body.Bytes(), &fresh)
	if fresh.Degraded {
		t.Fatal("healthy answer flagged degraded")
	}

	s.ForceBreakerOpen(true)

	w := postJSON(t, h, "/v1/autotune", body)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded autotune = %d: %s", w.Code, w.Body)
	}
	var stale AutotuneResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stale); err != nil {
		t.Fatal(err)
	}
	if !stale.Degraded || !stale.Cached {
		t.Errorf("degraded answer flags: degraded=%v cached=%v, want both true", stale.Degraded, stale.Cached)
	}
	stale.Degraded, stale.Cached = fresh.Degraded, fresh.Cached
	if stale != fresh {
		t.Errorf("degraded answer drifted from the cached sweep: %+v vs %+v", stale, fresh)
	}

	// A workload never swept has no safe answer while the breaker is open.
	miss := postJSON(t, h, "/v1/autotune", `{"profile": {"sp": 9e8}, "occupancy": 0.5}`)
	if miss.Code != http.StatusServiceUnavailable {
		t.Errorf("uncached degraded autotune = %d, want 503", miss.Code)
	}

	if w := getPath(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d while degraded, want 503", w.Code)
	} else if !strings.Contains(w.Body.String(), `"degraded"`) {
		t.Errorf("/readyz body %s does not report degraded", w.Body)
	}
	if w := getPath(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("/healthz = %d while degraded, want 200", w.Code)
	}

	metrics := getPath(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"energyd_breaker_state 2",
		"energyd_autotune_degraded_total 1",
		"energyd_calibration_coverage_fraction 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	s.ForceBreakerOpen(false)
	if w := getPath(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("/readyz = %d after recovery, want 200", w.Code)
	}
	var again AutotuneResponse
	json.Unmarshal(postJSON(t, h, "/v1/autotune", body).Body.Bytes(), &again)
	if again.Degraded {
		t.Error("recovered answer still flagged degraded")
	}
}

// TestBreakerOpensAfterConsecutiveSweepFailures drives the organic trip
// path: a sweep timeout small enough that every sweep 504s must open
// the breaker after the configured threshold, after which requests get
// the 503 degraded rejection instead of queueing more doomed sweeps.
func TestBreakerOpensAfterConsecutiveSweepFailures(t *testing.T) {
	cal, err := FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	s := New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, Options{
		SweepTimeout:     time.Nanosecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		// Distinct profiles so every request runs (and fails) a fresh sweep.
		body := `{"profile": {"sp": ` + string(rune('1'+i)) + `e8}, "occupancy": 0.9}`
		if w := postJSON(t, h, "/v1/autotune", body); w.Code != http.StatusGatewayTimeout {
			t.Fatalf("sweep %d = %d, want 504", i, w.Code)
		}
	}
	if state, _ := node0(s).Breaker.Snapshot(); state != fleet.BreakerOpen {
		t.Fatalf("breaker %v after 3 consecutive failures, want open", state)
	}
	w := postJSON(t, h, "/v1/autotune", `{"profile": {"sp": 9e8}, "occupancy": 0.9}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("open-breaker autotune = %d, want 503 (not another 504 sweep)", w.Code)
	}
	if w := getPath(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with organically open breaker, want 503", w.Code)
	}
}
