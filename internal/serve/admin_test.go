package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func del(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodDelete, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// adminFleet builds a 2-device fleet with the membership admin wired,
// mirroring what cmd/energyd assembles under -fleet -admin.
func adminFleet(tb testing.TB, extra serve.Options) (*serve.Server, *fleet.Registry) {
	tb.Helper()
	fc := fleet.FleetConfig{Seed: 42, Devices: []fleet.Spec{{ID: "tk1-a"}, {ID: "tk1-b"}}}
	base := experiments.Config{Seed: 42}
	reg, err := fleet.Build(fc, base, nil, fleet.NodeOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	opts := extra
	opts.Admin = &fleet.Admin{FleetSeed: fleet.ResolveSeed(fc, base), Base: base, Node: fleet.NodeOptions{}}
	if opts.DrainDeadline == 0 {
		opts.DrainDeadline = 2 * time.Second
	}
	return serve.NewFleet(reg, opts), reg
}

func TestAdminDisabledWithoutAdminWiring(t *testing.T) {
	cal, err := serve.FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	legacy := serve.New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, serve.Options{}).Handler()
	adminless := heterogeneousFleet(t, 0).Handler()
	for name, h := range map[string]http.Handler{"legacy": legacy, "fleet-no-admin": adminless} {
		if w := post(t, h, "/v1/fleet/devices", `{"id": "x"}`); w.Code != http.StatusForbidden {
			t.Errorf("%s: add = %d, want 403", name, w.Code)
		}
		if w := del(t, h, "/v1/fleet/devices/x?mode=evict"); w.Code != http.StatusForbidden {
			t.Errorf("%s: remove = %d, want 403", name, w.Code)
		}
	}
}

func TestAdminAddDevice(t *testing.T) {
	srv, reg := adminFleet(t, serve.Options{})
	h := srv.Handler()
	epoch := reg.Epoch()

	for name, body := range map[string]string{
		"not json":      `{`,
		"unknown field": `{"id": "x", "capacitance": 1}`,
		"empty id":      `{"id": ""}`,
		"bad bounds":    `{"id": "x", "min_core_mhz": 9000}`,
		"bad params":    `{"id": "x", "params": {"sp_pj_v2": -1}}`,
	} {
		if w := post(t, h, "/v1/fleet/devices?wait=1", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: add = %d, want 400", name, w.Code)
		}
	}
	if reg.Epoch() != epoch || reg.Len() != 2 {
		t.Fatalf("rejected specs mutated the registry: epoch %d -> %d, len %d",
			epoch, reg.Epoch(), reg.Len())
	}

	// A synchronous add returns 201 with the device serving.
	w := post(t, h, "/v1/fleet/devices?wait=1", `{"id": "tk1-added", "params": {"misc_w": 0.3}}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("add = %d: %s", w.Code, w.Body)
	}
	var resp serve.AddDeviceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.DeviceID != "tk1-added" || resp.State != "active" {
		t.Fatalf("add response = %+v, want tk1-added/active", resp)
	}
	if resp.Seed == 0 || resp.Seed == 42 {
		t.Errorf("added device seed %d not identity-derived", resp.Seed)
	}
	n, ok := reg.Get("tk1-added")
	if !ok || n.State() != fleet.StateActive || n.Cal() == nil {
		t.Fatal("added device not active and calibrated in the registry")
	}
	// It answers pinned traffic at once.
	pw := post(t, h, "/v1/fleet/predict",
		`{"profile": {"sp": 1e9, "dram_words": 2e8}, "setting_id": "max", "device": "tk1-added"}`)
	if pw.Code != http.StatusOK {
		t.Fatalf("predict on added device = %d: %s", pw.Code, pw.Body)
	}
	// The inventory reflects the new member.
	var list serve.DevicesResponse
	if err := json.Unmarshal(get(t, h, "/v1/fleet/devices").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Devices) != 3 || list.States["active"] != 3 || list.Epoch <= epoch {
		t.Errorf("inventory after add: %d devices, states %v, epoch %d", len(list.Devices), list.States, list.Epoch)
	}

	if w := post(t, h, "/v1/fleet/devices?wait=1", `{"id": "tk1-added"}`); w.Code != http.StatusConflict {
		t.Errorf("duplicate add = %d, want 409", w.Code)
	}
}

func TestAdminAddDeviceAsync(t *testing.T) {
	srv, reg := adminFleet(t, serve.Options{})
	h := srv.Handler()
	w := post(t, h, "/v1/fleet/devices", `{"id": "tk1-async"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("async add = %d: %s", w.Code, w.Body)
	}
	var resp serve.AddDeviceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The 202 is written before calibration lands; the device must be
	// visible immediately and active soon after.
	if _, ok := reg.Get("tk1-async"); !ok {
		t.Fatal("202'd device not in the registry")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, ok := reg.Get("tk1-async")
		if ok && n.State() == fleet.StateActive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async-added device never activated")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdminRemoveDevice(t *testing.T) {
	srv, reg := adminFleet(t, serve.Options{})
	h := srv.Handler()

	if w := del(t, h, "/v1/fleet/devices/"); w.Code != http.StatusNotFound {
		t.Errorf("empty id = %d, want 404", w.Code)
	}
	if w := get(t, h, "/v1/fleet/devices/tk1-a"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET on device = %d, want 405", w.Code)
	}
	if w := del(t, h, "/v1/fleet/devices/nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown device = %d, want 404", w.Code)
	}
	if w := del(t, h, "/v1/fleet/devices/tk1-a?mode=explode"); w.Code != http.StatusBadRequest {
		t.Errorf("bad mode = %d, want 400", w.Code)
	}
	if w := del(t, h, "/v1/fleet/devices/tk1-a?mode=drain&deadline_s=bogus"); w.Code != http.StatusBadRequest {
		t.Errorf("bad deadline = %d, want 400", w.Code)
	}

	w := del(t, h, "/v1/fleet/devices/tk1-a?mode=drain&deadline_s=2")
	if w.Code != http.StatusOK {
		t.Fatalf("drain = %d: %s", w.Code, w.Body)
	}
	var resp serve.RemoveDeviceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "drain" || resp.State != "removed" || !resp.Graceful {
		t.Fatalf("drain response = %+v", resp)
	}
	if _, ok := reg.Get("tk1-a"); ok {
		t.Fatal("drained device still in the registry")
	}
	// Pinned traffic to the departed device is a clean 404.
	pw := post(t, h, "/v1/fleet/predict",
		`{"profile": {"sp": 1e9}, "setting_id": "max", "device": "tk1-a"}`)
	if pw.Code != http.StatusNotFound {
		t.Errorf("predict on removed device = %d, want 404", pw.Code)
	}

	if w := del(t, h, "/v1/fleet/devices/tk1-b?mode=evict"); w.Code != http.StatusOK {
		t.Fatalf("evict = %d: %s", w.Code, w.Body)
	}
	// The fleet is empty: unpinned traffic degrades to 503, the readiness
	// probe fails, but the process stays up.
	if w := post(t, h, "/v1/fleet/predict", `{"profile": {"sp": 1e9}, "setting_id": "max"}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("predict on empty fleet = %d, want 503", w.Code)
	}
	if w := get(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz on empty fleet = %d, want 503", w.Code)
	}
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz on empty fleet = %d, want 200", w.Code)
	}
}

// TestDriftRecalibrationViaServe injects sustained thermal throttling on
// one device and drives a fresh sweep through /v1/fleet/place: the
// watchdog must fire on the throttled device only and swap in the
// recalibrated constants synchronously.
func TestDriftRecalibrationViaServe(t *testing.T) {
	recals := 0
	var recalDev string
	srv, reg := adminFleet(t, serve.Options{
		Drift:           &fleet.DriftConfig{Window: 32, Slack: 0.05, Threshold: units.Ratio(0.75)},
		SyncRecalibrate: true,
		Recalibrate: func(ctx context.Context, n *fleet.Node) (*experiments.Calibration, error) {
			recals++
			recalDev = n.ID
			return fleet.SyntheticCalibration(fleet.DeclaredModel(n.Spec.DeviceParams()))
		},
	})
	h := srv.Handler()

	// A clean fleet sweeps without firing anything.
	w := post(t, h, "/v1/fleet/place", `{"profile": {"sp": 2e9, "dram_words": 1e8}, "occupancy": 0.8}`)
	if w.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", w.Code, w.Body)
	}
	if recals != 0 {
		t.Fatalf("clean sweep triggered %d recalibrations", recals)
	}

	// Throttle tk1-b's hardware and sweep a previously unseen workload so
	// the fleet runs fresh measurements rather than serving cache.
	// A permanent deep throttle: dynamic power depressed to 5% for the
	// whole run, so measured energies sit far below the calibrated
	// prediction and the negative CUSUM side accumulates fast.
	nb, _ := reg.Get("tk1-b")
	nb.Cfg.Faults = faults.Plan{Throttle: 1, ThrottleFactor: 0.05, ThrottleFraction: 1, Seed: 5}
	genBefore := nb.CalGeneration()
	w = post(t, h, "/v1/fleet/place", `{"profile": {"sp": 3e9, "int": 1e9, "dram_words": 3e8}, "occupancy": 0.6}`)
	if w.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", w.Code, w.Body)
	}
	if recals != 1 || recalDev != "tk1-b" {
		t.Fatalf("throttled sweep ran %d recalibrations on %q, want 1 on tk1-b", recals, recalDev)
	}
	if nb.CalGeneration() != genBefore+1 || nb.Recalibrations() != 1 {
		t.Fatalf("constants did not swap: gen %d->%d, recals %d",
			genBefore, nb.CalGeneration(), nb.Recalibrations())
	}
	na, _ := reg.Get("tk1-a")
	if na.Recalibrations() != 0 {
		t.Error("healthy device was recalibrated")
	}
}

// FuzzFleetSpec holds the admin add-device decoder to the fuzz
// contract: no panic on any body, no 2xx for a body the spec decoder
// rejects, and a rejected spec never mutates the registry (same length,
// same epoch). Accepted specs are evicted again so the fleet returns to
// its baseline for the next input.
func FuzzFleetSpec(f *testing.F) {
	srv, reg := adminFleet(f, serve.Options{})
	h := srv.Handler()
	for _, body := range []string{
		`{"id": "tk1-new"}`,
		`{"id": "tk1-new", "params": {"sp_pj_v2": 19.5, "misc_w": 0.3}, "seed": 7}`,
		`{"id": "tk1-new", "min_core_mhz": 300, "max_core_mhz": 612}`,
		`{"id": "tk1-new", "ideal": true}`,
		`{"id": ""}`,
		`{"id": "x", "capacitance": 1}`,
		`{"id": "x", "params": {"sp_pj": 1}}`,
		`{"id": "x", "min_core_mhz": 9000}`,
		`{"id": "x", "seed": -4}`,
		`{"id": "tk1-a"}`,
		`{"id": "x", "calibration_cache": "/nope.csv"}`,
		`[{"id": "x"}]`,
		`{"id"`,
		`null`,
		``,
	} {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body string) {
		lenBefore, epochBefore := reg.Len(), reg.Epoch()
		req := httptest.NewRequest(http.MethodPost, "/v1/fleet/devices?wait=1", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)

		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("add returned non-JSON for %q: %q", body, rr.Body.String())
		}
		if rr.Code >= 200 && rr.Code < 300 {
			if _, err := fleet.ParseSpec([]byte(body)); err != nil {
				t.Fatalf("add answered %d to a spec its decoder rejects (%v): %q", rr.Code, err, body)
			}
			var resp serve.AddDeviceResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
				t.Fatalf("2xx add response not an AddDeviceResponse: %q", rr.Body.String())
			}
			if reg.Len() != lenBefore+1 {
				t.Fatalf("accepted add grew the fleet %d -> %d, want +1", lenBefore, reg.Len())
			}
			// Restore the baseline for the next fuzz input. Evict through
			// the registry: fuzzed device IDs need not survive a URL path.
			if err := reg.Evict(resp.DeviceID); err != nil {
				t.Fatalf("cleanup evict of %q: %v", resp.DeviceID, err)
			}
			return
		}
		if rr.Code >= 500 {
			// A spec that parsed but failed calibration joined and was
			// evicted again: membership restored, epoch legitimately moved.
			if reg.Len() != lenBefore {
				t.Fatalf("failed add (%d) changed the fleet size %d -> %d for %q",
					rr.Code, lenBefore, reg.Len(), body)
			}
			return
		}
		// Rejected specs must leave the registry untouched.
		if reg.Len() != lenBefore || reg.Epoch() != epochBefore {
			t.Fatalf("rejected add (%d) mutated the registry: len %d->%d epoch %d->%d for %q",
				rr.Code, lenBefore, reg.Len(), epochBefore, reg.Epoch(), body)
		}
	})
}
