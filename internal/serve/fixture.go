package serve

import (
	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/units"
)

// Fixture calibration: a small, fully deterministic sample campaign
// whose energies come from the paper's ground-truth constants (DESIGN.md
// §5) in closed form, with no measurement noise. Fitting it recovers the
// reference model exactly, which makes it ideal as a fast test fixture
// and as the checked-in cmd/energyd/testdata cache the CI smoke test
// boots from — no 1856-measurement campaign required.

// fixtureModel returns the DESIGN.md §5 reference constants.
func fixtureModel() *core.Model {
	return &core.Model{
		SPpJ: 27.33, DPpJ: 131.12, IntpJ: 56.56,
		SMpJ: 33.37, L2pJ: 85.02, DRAMpJ: 369.63,
		C1Proc: 2.70, C1Mem: 3.80, PMisc: 0.15,
	}
}

// fixtureProfiles are eight operation mixes diverse enough to identify
// all nine Eq. 9 constants: one near-pure workload per class plus two
// blends, in units of 1e9 operations.
func fixtureProfiles() []ProfileJSON {
	const g = 1e9
	return []ProfileJSON{
		{SP: 4 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{DPFMA: 1.5 * g, DPAdd: 0.3 * g, DPMul: 0.2 * g, DRAMWords: 0.05 * g},
		{Int: 3 * g, DRAMWords: 0.05 * g},
		{SharedWords: 2 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{L1Words: 1.5 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{L2Words: 1 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{SP: 0.2 * g, Int: 0.1 * g, DRAMWords: 0.8 * g},
		{DPFMA: 0.8 * g, Int: 0.5 * g, SharedWords: 0.5 * g, L2Words: 0.3 * g, DRAMWords: 0.3 * g},
	}
}

// FixtureSamples builds the synthetic campaign: every fixture profile at
// every one of the 16 calibration settings, setting-major as
// experiments.Calibrate produces and CalibrateFromSamples expects.
// Execution times scale with the core period so the constant-energy term
// varies across settings and the leakage coefficients are identifiable.
func FixtureSamples() []core.Sample {
	model := fixtureModel()
	settings := dvfs.CalibrationSettings()
	profiles := fixtureProfiles()
	samples := make([]core.Sample, 0, len(settings)*len(profiles))
	for _, cs := range settings {
		s := cs.Setting
		for pi, pj := range profiles {
			p := pj.profile()
			// A deterministic, physically plausible runtime: longer on
			// slower clocks, different per profile.
			t := units.Second(0.2 * (1 + 0.1*float64(pi)) * (852.0 / float64(s.Core.FreqMHz)))
			samples = append(samples, core.Sample{
				Profile: p,
				Setting: s,
				Time:    t,
				Energy:  model.Predict(p, s, t),
			})
		}
	}
	return samples
}

// FixtureCalibration fits and validates the synthetic campaign.
func FixtureCalibration() (*experiments.Calibration, error) {
	return experiments.CalibrateFromSamples(FixtureSamples())
}
