package serve

import (
	"dvfsroofline/internal/core"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
)

// Fixture calibration: a small, fully deterministic sample campaign
// whose energies come from the paper's ground-truth constants (DESIGN.md
// §5) in closed form, with no measurement noise. Fitting it recovers the
// reference model exactly, which makes it ideal as a fast test fixture
// and as the checked-in cmd/energyd/testdata cache the CI smoke test
// boots from — no 1856-measurement campaign required. The generator
// itself lives in internal/fleet (fleet.SyntheticSamples), where every
// fleet device uses it to boot from its declared parameters; this is
// the single-device instance, pinned byte-for-byte by
// cmd/energyd/testdata/samples.csv.

// fixtureModel returns the DESIGN.md §5 reference constants.
func fixtureModel() *core.Model {
	return &core.Model{
		SPpJ: 27.33, DPpJ: 131.12, IntpJ: 56.56,
		SMpJ: 33.37, L2pJ: 85.02, DRAMpJ: 369.63,
		C1Proc: 2.70, C1Mem: 3.80, PMisc: 0.15,
	}
}

// FixtureSamples builds the synthetic campaign: every fixture profile at
// every one of the 16 calibration settings, setting-major as
// experiments.Calibrate produces and CalibrateFromSamples expects.
func FixtureSamples() []core.Sample {
	return fleet.SyntheticSamples(fixtureModel())
}

// FixtureCalibration fits and validates the synthetic campaign.
func FixtureCalibration() (*experiments.Calibration, error) {
	return experiments.CalibrateFromSamples(FixtureSamples())
}
