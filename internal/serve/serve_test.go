package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/tegra"
)

// node0 returns the single legacy node behind a test server.
func node0(s *Server) *fleet.Node { return s.reg.Nodes()[0] }

func newTestServer(t *testing.T) *Server {
	t.Helper()
	cal, err := FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	return New(tegra.NewDevice(), cal, experiments.Config{Seed: 42}, Options{})
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestFixtureRecoversReferenceModel(t *testing.T) {
	cal, err := FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	ref := fixtureModel()
	got := cal.Model
	pairs := [][2]float64{
		{float64(got.SPpJ), float64(ref.SPpJ)}, {float64(got.DPpJ), float64(ref.DPpJ)},
		{float64(got.IntpJ), float64(ref.IntpJ)}, {float64(got.SMpJ), float64(ref.SMpJ)},
		{float64(got.L2pJ), float64(ref.L2pJ)}, {float64(got.DRAMpJ), float64(ref.DRAMpJ)},
		{float64(got.C1Proc), float64(ref.C1Proc)}, {float64(got.C1Mem), float64(ref.C1Mem)},
		{float64(got.PMisc), float64(ref.PMisc)},
	}
	for i, p := range pairs {
		if math.Abs(p[0]-p[1]) > 1e-6*(1+math.Abs(p[1])) {
			t.Errorf("constant %d: fitted %v, want %v", i, p[0], p[1])
		}
	}
	if m := cal.KFold.Percent().Mean; m > 1e-6 {
		t.Errorf("noiseless fixture CV error %g%%, want ~0", m)
	}
}

func TestHealthz(t *testing.T) {
	h := newTestServer(t).Handler()
	w := getPath(t, h, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
	var body struct {
		Status  string `json:"status"`
		Samples int    `json:"samples"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Samples != 128 {
		t.Errorf("healthz body = %+v", body)
	}
}

func TestPredictMatchesModel(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	w := postJSON(t, h, "/v1/predict",
		`{"profile": {"dp_fma": 1e9, "int": 5e8, "dram_words": 2e8}, "setting_id": "S1", "time_s": 0.5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	req := PredictRequest{Profile: ProfileJSON{DPFMA: 1e9, Int: 5e8, DRAMWords: 2e8}}
	want := node0(s).Cal().Model.Predict(req.Profile.profile(), dvfs.ValidationSettings()[0], 0.5)
	if math.Abs(float64(resp.PredictedJ-want)) > 1e-9*float64(want) {
		t.Errorf("predicted %v J, want %v J", resp.PredictedJ, want)
	}
	sum := resp.Parts.SP + resp.Parts.DP + resp.Parts.Int + resp.Parts.SM +
		resp.Parts.L2 + resp.Parts.DRAM + resp.Parts.Constant
	if math.Abs(float64(sum-resp.PredictedJ)) > 1e-9*float64(want) {
		t.Errorf("parts sum %v != total %v", sum, resp.PredictedJ)
	}
	if resp.Setting.CoreMHz != 852 || resp.Setting.MemMHz != 924 {
		t.Errorf("S1 resolved to %+v", resp.Setting)
	}
}

func TestPredictSimulatesTimeWhenAbsent(t *testing.T) {
	s := newTestServer(t)
	w := postJSON(t, s.Handler(), "/v1/predict",
		`{"profile": {"dp_fma": 1e9, "dram_words": 2e8}, "setting": {"core_mhz": 852, "mem_mhz": 924}, "occupancy": 0.25}`)
	if w.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	wl := tegra.Workload{Profile: ProfileJSON{DPFMA: 1e9, DRAMWords: 2e8}.profile(), Occupancy: 0.25}
	want := node0(s).Dev.Execute(wl, dvfs.MaxSetting()).Time
	if math.Abs(float64(resp.TimeS-want)) > 1e-12 {
		t.Errorf("simulated time %v, want %v", resp.TimeS, want)
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	h := newTestServer(t).Handler()
	cases := []struct {
		name, body string
	}{
		{"no setting", `{"profile": {"sp": 1e9}}`},
		{"both settings", `{"profile": {"sp": 1e9}, "setting_id": "max", "setting": {"core_mhz": 852, "mem_mhz": 924}}`},
		{"unknown id", `{"profile": {"sp": 1e9}, "setting_id": "S99"}`},
		{"off-table frequency", `{"profile": {"sp": 1e9}, "setting": {"core_mhz": 333, "mem_mhz": 924}}`},
		{"unknown field", `{"profile": {"sp": 1e9}, "setting_id": "max", "wat": 1}`},
		{"negative time", `{"profile": {"sp": 1e9}, "setting_id": "max", "time_s": -1}`},
		{"empty profile", `{"profile": {}, "setting_id": "max"}`},
		{"negative count", `{"profile": {"sp": -5}, "setting_id": "max"}`},
	}
	for _, c := range cases {
		if w := postJSON(t, h, "/v1/predict", c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (%s)", c.name, w.Code, w.Body)
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/predict", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict = %d, want 405", w.Code)
	}
}

func TestConcurrentPredicts(t *testing.T) {
	// Acceptance bar: >= 64 concurrent /v1/predict requests, race-clean
	// (the suite runs under -race in CI).
	h := newTestServer(t).Handler()
	const n = 64
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"profile": {"dp_fma": %g, "dram_words": 1e8}, "setting_id": "S%d", "time_s": 0.25}`,
				1e9+float64(i)*1e7, i%8+1)
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: code %d", i, c)
		}
	}
}

func TestAutotunePicksAndCache(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	body := `{"profile": {"dp_fma": 2e8, "int": 1e8, "dram_words": 5e7}, "occupancy": 0.9}`

	w := postJSON(t, h, "/v1/autotune", body)
	if w.Code != http.StatusOK {
		t.Fatalf("autotune = %d: %s", w.Code, w.Body)
	}
	var first AutotuneResponse
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first sweep reported cached")
	}
	if first.Candidates != 16 {
		t.Errorf("candidates = %d, want 16 (calibration grid)", first.Candidates)
	}
	if first.ModelExtraEnergyPct < 0 || first.OracleExtraEnergyPct < 0 {
		t.Errorf("extra-energy percentages negative: %+v", first)
	}
	// The time oracle must pick the fastest candidate; with both domains
	// maxed that is the 852/924 setting.
	if first.TimeOracle.Setting.CoreMHz != 852 || first.TimeOracle.Setting.MemMHz != 924 {
		t.Errorf("time oracle picked %+v, want 852/924", first.TimeOracle.Setting)
	}

	w = postJSON(t, h, "/v1/autotune", body)
	if w.Code != http.StatusOK {
		t.Fatalf("repeat autotune = %d: %s", w.Code, w.Body)
	}
	var second AutotuneResponse
	if err := json.Unmarshal(w.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical repeat sweep not served from cache")
	}
	second.Cached = first.Cached
	if first != second {
		t.Errorf("cached answer differs: %+v vs %+v", first, second)
	}

	hits, misses := s.metrics.cacheCounts()
	if hits != 1 || misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", hits, misses)
	}
	if !strings.Contains(getPath(t, h, "/metrics").Body.String(), "energyd_autotune_cache_hits_total 1") {
		t.Error("cache hit counter not visible in /metrics")
	}
}

func TestAutotuneSingleflight(t *testing.T) {
	// Concurrent identical sweeps must run the expensive sweep once: one
	// miss (the executor), everyone else a hit joining the flight or the
	// cache.
	s := newTestServer(t)
	h := s.Handler()
	body := `{"profile": {"sp": 4e8, "dram_words": 1e8}, "occupancy": 0.9, "grid": "full"}`
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postJSON(t, h, "/v1/autotune", body)
			if w.Code != http.StatusOK {
				t.Errorf("autotune = %d: %s", w.Code, w.Body)
			}
		}()
	}
	wg.Wait()
	hits, misses := s.metrics.cacheCounts()
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 executed sweep", misses)
	}
	if hits != n-1 {
		t.Errorf("hits = %d, want %d", hits, n-1)
	}
}

func TestAutotuneDeadline(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	// A timeout far below any sweep duration must 504 without caching.
	w := postJSON(t, h, "/v1/autotune",
		`{"profile": {"dp_fma": 2e8, "dram_words": 5e7}, "occupancy": 0.9, "grid": "full", "timeout_s": 1e-9}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("autotune with 1ns deadline = %d: %s", w.Code, w.Body)
	}
	if got := node0(s).Cache.Len(); got != 0 {
		t.Errorf("failed sweep cached: %d entries", got)
	}
}

func TestAutotuneRejectsUnknownGrid(t *testing.T) {
	h := newTestServer(t).Handler()
	w := postJSON(t, h, "/v1/autotune", `{"profile": {"sp": 1e9}, "grid": "warp"}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown grid = %d, want 400", w.Code)
	}
}

func TestCalibrationEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()
	w := getPath(t, h, "/v1/calibration")
	if w.Code != http.StatusOK {
		t.Fatalf("calibration = %d", w.Code)
	}
	var resp CalibrationResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Samples != 128 || len(resp.TableI) != 16 {
		t.Errorf("samples %d / table rows %d, want 128 / 16", resp.Samples, len(resp.TableI))
	}
	if math.Abs(float64(resp.Model.DRAMpJ)-369.63) > 1e-6 {
		t.Errorf("DRAM constant %v, want 369.63", resp.Model.DRAMpJ)
	}
	if resp.Grids["calibration"] != 16 || resp.Grids["full"] != 105 {
		t.Errorf("grids = %v", resp.Grids)
	}
}

func TestMetricsFormat(t *testing.T) {
	h := newTestServer(t).Handler()
	postJSON(t, h, "/v1/predict", `{"profile": {"sp": 1e9}, "setting_id": "max", "time_s": 0.1}`)
	postJSON(t, h, "/v1/predict", `{"profile": {}}`) // 400
	body := getPath(t, h, "/metrics").Body.String()
	for _, want := range []string{
		`energyd_requests_total{endpoint="/v1/predict",code="200"} 1`,
		`energyd_requests_total{endpoint="/v1/predict",code="400"} 1`,
		`energyd_request_duration_seconds_count{endpoint="/v1/predict"} 2`,
		"energyd_inflight_requests 0",
		"# TYPE energyd_request_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}

func TestRunDrainsInflightOnShutdown(t *testing.T) {
	// Run must keep serving an in-flight request after ctx cancellation
	// and only return once the handler finishes.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "drained")
	})
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, l, h, 10*time.Second) }()

	type result struct {
		body []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + l.Addr().String() + "/")
		if err != nil {
			resc <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{b, err}
	}()

	<-started
	cancel() // SIGTERM equivalent: shutdown begins with the request in flight
	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if !bytes.Equal(res.body, []byte("drained")) {
		t.Errorf("in-flight response = %q", res.body)
	}
}

func TestMalformedRequestsRejected(t *testing.T) {
	h := newTestServer(t).Handler()
	for _, path := range []string{"/v1/predict", "/v1/autotune"} {
		for _, body := range []string{
			`{`,                 // truncated JSON
			`not json at all`,   // not JSON
			`{"profile": "sp"}`, // wrong type
			`{"profiel": {}}`,   // unknown field
		} {
			if w := postJSON(t, h, path, body); w.Code != http.StatusBadRequest {
				t.Errorf("POST %s %q = %d, want 400 (%s)", path, body, w.Code, w.Body)
			}
		}
		for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(method, path, nil))
			if w.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, w.Code)
			}
		}
	}
}

func TestCancelledSweepNotCached(t *testing.T) {
	// A client disconnect mid-sweep must leave no partial result in the
	// LRU and must not count against the breaker.
	cal, err := FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := experiments.Config{Seed: 42, Workers: 1}
	cfg.OnProgress = func(experiments.Progress) { cancel() } // fires after the first unit of work
	s := New(tegra.NewDevice(), cal, cfg, Options{})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/autotune",
		strings.NewReader(`{"profile": {"sp": 4e8, "dram_words": 1e8}, "occupancy": 0.9}`))
	req = req.WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled sweep = %d, want 503 (%s)", w.Code, w.Body)
	}
	if n := node0(s).Cache.Len(); n != 0 {
		t.Errorf("partial sweep landed in the cache: %d entries", n)
	}
	if state, _ := node0(s).Breaker.Snapshot(); state != fleet.BreakerClosed {
		t.Errorf("client cancellation tripped the breaker to %v", state)
	}
}
