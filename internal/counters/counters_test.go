package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegistryMatchesTableIII(t *testing.T) {
	// Table III has 17 rows: 4 metrics and 13 events.
	if len(Registry) != 17 {
		t.Fatalf("registry has %d entries, Table III has 17", len(Registry))
	}
	var nE, nM int
	for _, d := range Registry {
		switch d.Kind {
		case Event:
			nE++
		case Metric:
			nM++
		default:
			t.Errorf("counter %q has unknown kind %c", d.Name, d.Kind)
		}
		if d.Description == "" {
			t.Errorf("counter %q has no description", d.Name)
		}
	}
	if nM != 4 || nE != 13 {
		t.Errorf("got %d metrics and %d events, want 4 and 13", nM, nE)
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Registry {
		if seen[d.Name] {
			t.Errorf("duplicate counter name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestLookup(t *testing.T) {
	d, ok := Lookup(FlopsDPFMA)
	if !ok || d.Kind != Metric {
		t.Errorf("Lookup(%q) = %+v, %v", FlopsDPFMA, d, ok)
	}
	if _, ok := Lookup("no_such_counter"); ok {
		t.Error("Lookup of unknown counter succeeded")
	}
}

func TestSetValidate(t *testing.T) {
	s := Set{FlopsDPFMA: 10}
	if err := s.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := (Set{"bogus": 1}).Validate(); err == nil {
		t.Error("unknown counter accepted")
	}
	if err := (Set{FlopsDPFMA: -1}).Validate(); err == nil {
		t.Error("negative counter accepted")
	}
}

func TestSetMergeAndNames(t *testing.T) {
	a := Set{FlopsDPFMA: 1, InstInteger: 2}
	b := Set{FlopsDPFMA: 3, FlopsDPAdd: 4}
	a.Merge(b)
	if a[FlopsDPFMA] != 4 || a[FlopsDPAdd] != 4 || a[InstInteger] != 2 {
		t.Errorf("merge wrong: %v", a)
	}
	names := a.Names()
	if len(names) != 3 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names() not sorted")
		}
	}
}

func TestDeriveL2Subtraction(t *testing.T) {
	// The paper's example: L2-served reads = total L2 queries - DRAM reads.
	s := Set{
		L2Subp0TotalReadQueries: 1000, // 1000*4*32 = 128000 bytes total
		FBSubp0ReadSectors:      500,  // 500*32*2 = 32000 bytes from DRAM
		FBSubp1ReadSectors:      500,
	}
	p, err := Derive(s)
	if err != nil {
		t.Fatal(err)
	}
	wantL2 := (128000.0 - 32000.0) / WordBytes
	if p.L2Words != wantL2 {
		t.Errorf("L2Words = %v, want %v", p.L2Words, wantL2)
	}
	if p.DRAMWords != 32000.0/WordBytes {
		t.Errorf("DRAMWords = %v, want %v", p.DRAMWords, 32000.0/WordBytes)
	}
}

func TestDeriveInconsistent(t *testing.T) {
	// DRAM bytes exceeding L2 queries is physically impossible.
	s := Set{
		L2Subp0TotalReadQueries: 1,
		FBSubp0ReadSectors:      1000,
		FBSubp1ReadSectors:      1000,
	}
	if _, err := Derive(s); err == nil {
		t.Error("expected inconsistency error")
	}
}

func TestEmitDeriveRoundTrip(t *testing.T) {
	// Property: Derive(Emit(p)) == p for non-negative profiles.
	f := func(a, b, c, d, e, f1, g, h, i uint32) bool {
		p := Profile{
			DPFMA: float64(a % 1e6), DPAdd: float64(b % 1e6), DPMul: float64(c % 1e6),
			Int: float64(d % 1e6), SP: 0,
			SharedWords: float64(e%1e6) * 32, L1Words: float64(f1%1e6) * 32,
			L2Words: float64(g%1e6) * 32, DRAMWords: float64(h%1e6) * 16,
		}
		_ = i
		q, err := Derive(Emit(p))
		if err != nil {
			return false
		}
		const tol = 1e-9
		return math.Abs(q.DPFMA-p.DPFMA) < tol &&
			math.Abs(q.Int-p.Int) < tol &&
			math.Abs(q.SharedWords-p.SharedWords) < tol &&
			math.Abs(q.L1Words-p.L1Words) < tol &&
			math.Abs(q.L2Words-p.L2Words) < tol &&
			math.Abs(q.DRAMWords-p.DRAMWords) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProfileArithmetic(t *testing.T) {
	p := Profile{DPFMA: 1, DPAdd: 2, DPMul: 3, Int: 4, SharedWords: 5, L1Words: 6, L2Words: 7, DRAMWords: 8}
	q := p.Add(p)
	if q.DPFMA != 2 || q.DRAMWords != 16 {
		t.Errorf("Add wrong: %+v", q)
	}
	r := p.Scale(10)
	if r.Int != 40 || r.SharedWords != 50 {
		t.Errorf("Scale wrong: %+v", r)
	}
}

func TestProfileDerivedQuantities(t *testing.T) {
	p := Profile{DPFMA: 10, DPAdd: 5, DPMul: 5, Int: 30, SharedWords: 50, L1Words: 30, L2Words: 10, DRAMWords: 10}
	if got := p.Instructions(); got != 50 {
		t.Errorf("Instructions = %v, want 50", got)
	}
	if got := p.DPFlops(); got != 30 { // 2*10 + 5 + 5
		t.Errorf("DPFlops = %v, want 30", got)
	}
	if got := p.Accesses(); got != 100 {
		t.Errorf("Accesses = %v, want 100", got)
	}
	if got := p.IntegerFraction(); got != 0.6 {
		t.Errorf("IntegerFraction = %v, want 0.6", got)
	}
	if got := p.DRAMFraction(); got != 0.1 {
		t.Errorf("DRAMFraction = %v, want 0.1", got)
	}
	var zero Profile
	if zero.IntegerFraction() != 0 || zero.DRAMFraction() != 0 {
		t.Error("zero profile fractions should be 0")
	}
}
