package counters

import "fmt"

// This file evaluates Table III entries by name, the way the paper's
// analysis scripts post-process an nvprof run: counter *events* read out
// directly, counter *metrics* derived from one or more events.

// DRAMReadBytes returns the bytes read from DRAM: the two frame-buffer
// sub-partition sector counters times the sector size.
func DRAMReadBytes(s Set) float64 {
	return (s[FBSubp0ReadSectors] + s[FBSubp1ReadSectors]) * SectorBytes
}

// L2TotalReadBytes returns the total bytes requested from the L2: the
// slice-0 query counter scaled to all slices.
func L2TotalReadBytes(s Set) float64 {
	return s[L2Subp0TotalReadQueries] * L2Slices * SectorBytes
}

// L2ReadHitBytes returns the bytes served by the L2 itself — the paper's
// worked example: total L2 queries minus what had to come from DRAM.
func L2ReadHitBytes(s Set) (float64, error) {
	hit := L2TotalReadBytes(s) - DRAMReadBytes(s)
	if hit < 0 {
		return 0, fmt.Errorf("counters: DRAM bytes exceed L2 queries (inconsistent events)")
	}
	return hit, nil
}

// L1HitBytes returns the bytes served by the L1 cache.
func L1HitBytes(s Set) float64 {
	return s[L1GlobalLoadHit] * L1LineBytes
}

// SharedBytes returns the bytes moved through shared memory (loads and
// stores).
func SharedBytes(s Set) float64 {
	return (s[L1SharedLoadTransactions] + s[L1SharedStoreTransaction]) * SharedTransBytes
}

// Value evaluates a Table III entry by name: events are read out
// directly (absent events read as zero, like an unprogrammed counter);
// metrics are derived from events. Unknown names are an error.
func Value(name string, s Set) (float64, error) {
	d, ok := Lookup(name)
	if !ok {
		return 0, fmt.Errorf("counters: unknown counter %q", name)
	}
	if d.Kind == Event {
		return s[name], nil
	}
	// The four Table III metrics are instruction-count characteristics;
	// in this simulation they are recorded directly by the instrumented
	// application, so derivation is the identity. They remain "metrics"
	// because nvprof derives them from SM-level event groups.
	switch name {
	case FlopsDPFMA, FlopsDPAdd, FlopsDPMul, InstInteger:
		return s[name], nil
	default:
		return 0, fmt.Errorf("counters: no derivation for metric %q", name)
	}
}

// Report summarizes an event set the way the paper's Figure 4 input is
// assembled: instruction counts plus per-level byte traffic.
type Report struct {
	DPFMA, DPAdd, DPMul, Int                    float64
	SharedBytes, L1Bytes, L2HitBytes, DRAMBytes float64
	L2WriteBytes                                float64
}

// Summarize derives a Report from raw events.
func Summarize(s Set) (Report, error) {
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	l2hit, err := L2ReadHitBytes(s)
	if err != nil {
		return Report{}, err
	}
	return Report{
		DPFMA:        s[FlopsDPFMA],
		DPAdd:        s[FlopsDPAdd],
		DPMul:        s[FlopsDPMul],
		Int:          s[InstInteger],
		SharedBytes:  SharedBytes(s),
		L1Bytes:      L1HitBytes(s),
		L2HitBytes:   l2hit,
		DRAMBytes:    DRAMReadBytes(s),
		L2WriteBytes: s[L2Subp0TotalWriteQueries] * L2Slices * SectorBytes,
	}, nil
}
