package counters

import (
	"math"
	"testing"
)

func sampleEvents() Set {
	return Set{
		FlopsDPFMA:               100,
		FlopsDPAdd:               40,
		FlopsDPMul:               60,
		InstInteger:              300,
		FBSubp0ReadSectors:       10, // 320 B
		FBSubp1ReadSectors:       30, // 960 B
		L2Subp0TotalReadQueries:  50, // 50*4*32 = 6400 B total
		L1GlobalLoadHit:          4,  // 512 B
		L1SharedLoadTransactions: 8,  // 1024 B
		L1SharedStoreTransaction: 2,  // 256 B
		L2Subp0TotalWriteQueries: 5,  // 640 B
	}
}

func TestByteDerivations(t *testing.T) {
	s := sampleEvents()
	if got := DRAMReadBytes(s); got != 1280 {
		t.Errorf("DRAMReadBytes = %v, want 1280", got)
	}
	if got := L2TotalReadBytes(s); got != 6400 {
		t.Errorf("L2TotalReadBytes = %v, want 6400", got)
	}
	hit, err := L2ReadHitBytes(s)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 6400-1280 {
		t.Errorf("L2ReadHitBytes = %v, want %v", hit, 6400-1280)
	}
	if got := L1HitBytes(s); got != 512 {
		t.Errorf("L1HitBytes = %v, want 512", got)
	}
	if got := SharedBytes(s); got != 1280 {
		t.Errorf("SharedBytes = %v, want 1280", got)
	}
}

func TestL2HitInconsistency(t *testing.T) {
	s := Set{FBSubp0ReadSectors: 1000, L2Subp0TotalReadQueries: 1}
	if _, err := L2ReadHitBytes(s); err == nil {
		t.Error("expected inconsistency error")
	}
	if _, err := Summarize(s); err == nil {
		t.Error("Summarize should propagate the inconsistency")
	}
}

func TestValueEventsAndMetrics(t *testing.T) {
	s := sampleEvents()
	if v, err := Value(FBSubp0ReadSectors, s); err != nil || v != 10 {
		t.Errorf("event value = %v, %v", v, err)
	}
	if v, err := Value(FlopsDPFMA, s); err != nil || v != 100 {
		t.Errorf("metric value = %v, %v", v, err)
	}
	// Unrecorded event reads as zero.
	if v, err := Value(GSTRequest, s); err != nil || v != 0 {
		t.Errorf("absent event = %v, %v", v, err)
	}
	if _, err := Value("bogus_counter", s); err == nil {
		t.Error("unknown counter accepted")
	}
}

func TestSummarizeReport(t *testing.T) {
	r, err := Summarize(sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	if r.DPFMA != 100 || r.Int != 300 {
		t.Errorf("instruction counts wrong: %+v", r)
	}
	if r.DRAMBytes != 1280 || r.L2HitBytes != 5120 || r.L1Bytes != 512 || r.SharedBytes != 1280 {
		t.Errorf("byte traffic wrong: %+v", r)
	}
	if r.L2WriteBytes != 640 {
		t.Errorf("L2 write bytes = %v, want 640", r.L2WriteBytes)
	}
}

func TestSummarizeConsistentWithDerive(t *testing.T) {
	// The Report's byte counts and Derive's word counts must agree.
	s := sampleEvents()
	r, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Derive(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.DRAMWords*WordBytes-r.DRAMBytes) > 1e-9 {
		t.Error("DRAM bytes disagree between Summarize and Derive")
	}
	if math.Abs(p.SharedWords*WordBytes-r.SharedBytes) > 1e-9 {
		t.Error("shared bytes disagree")
	}
	if math.Abs(p.L1Words*WordBytes-r.L1Bytes) > 1e-9 {
		t.Error("L1 bytes disagree")
	}
	// Derive folds write traffic into L2 words.
	if math.Abs(p.L2Words*WordBytes-(r.L2HitBytes+r.L2WriteBytes)) > 1e-9 {
		t.Error("L2 bytes disagree")
	}
}
