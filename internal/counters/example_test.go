package counters_test

import (
	"fmt"

	"dvfsroofline/internal/counters"
)

func ExampleDerive() {
	// The paper's worked example: reads served by the L2 are the total
	// L2 queries minus the bytes that came from DRAM.
	events := counters.Set{
		counters.L2Subp0TotalReadQueries: 1000, // x4 slices x32 B
		counters.FBSubp0ReadSectors:      500,  // x32 B
		counters.FBSubp1ReadSectors:      500,
	}
	p, err := counters.Derive(events)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("L2 words %.0f, DRAM words %.0f\n", p.L2Words, p.DRAMWords)
	// Output: L2 words 24000, DRAM words 8000
}

func ExampleProfile_IntegerFraction() {
	p := counters.Profile{DPFMA: 20, DPAdd: 10, DPMul: 10, Int: 60}
	fmt.Printf("%.0f%% integer\n", 100*p.IntegerFraction())
	// Output: 60% integer
}
