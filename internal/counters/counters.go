// Package counters reproduces the performance-counter layer the paper
// uses to profile its FMM implementation (Table III): nvprof-style
// counter *events* (raw hardware counts) and *metrics* (characteristics
// derived from one or more events). Applications record events; the
// package derives an operation Profile — instruction counts by class and
// word traffic by memory-hierarchy level — which is exactly the input the
// DVFS-aware energy roofline consumes.
package counters

import (
	"fmt"
	"sort"
)

// Kind distinguishes raw counter events from derived metrics, matching
// the "Type" column of Table III.
type Kind byte

const (
	// Event is a single hardware counter value (Table III type "E").
	Event Kind = 'E'
	// Metric is a characteristic derived from one or more events
	// (Table III type "M").
	Metric Kind = 'M'
)

// Descriptor documents one counter, mirroring a row of Table III.
type Descriptor struct {
	Kind        Kind
	Name        string
	Description string
}

// Table III counter names. Events are raw; metrics are derived.
const (
	FlopsDPFMA  = "flops_dp_fma"
	FlopsDPAdd  = "flops_dp_add"
	FlopsDPMul  = "flops_dp_mul"
	InstInteger = "inst_integer"

	L1GlobalLoadHit          = "l1_global_load_hit"
	L2Subp0TotalReadQueries  = "l2_subp0_total_read_sector_queries"
	GLDRequest               = "gld_request"
	L1SharedLoadTransactions = "l1_shared_load_transactions"
	FBSubp0ReadSectors       = "fb_subp0_read_sectors"
	FBSubp1ReadSectors       = "fb_subp1_read_sectors"
	L2Subp0ReadL1HitSectors  = "l2_subp0_read_l1_hit_sectors"
	L2Subp1ReadL1HitSectors  = "l2_subp1_read_l1_hit_sectors"
	L2Subp2ReadL1HitSectors  = "l2_subp2_read_l1_hit_sectors"
	L2Subp3ReadL1HitSectors  = "l2_subp3_read_l1_hit_sectors"
	GSTRequest               = "gst_request"
	L2Subp0TotalWriteQueries = "l2_subp0_total_write_sector_queries"
	L1SharedStoreTransaction = "l1_shared_store_transactions"
)

// Registry lists every counter of Table III in the paper's order.
var Registry = []Descriptor{
	{Metric, FlopsDPFMA, "# of double-precision floating point multiply-accumulate operations"},
	{Metric, FlopsDPAdd, "# of double-precision floating point add operations"},
	{Metric, FlopsDPMul, "# of double-precision floating point multiply operations"},
	{Metric, InstInteger, "# of integer instructions"},
	{Event, L1GlobalLoadHit, "# of cache lines that hit in L1 cache"},
	{Event, L2Subp0TotalReadQueries, "Total read request for slice 0 of L2 cache"},
	{Event, GLDRequest, "# of load instructions"},
	{Event, L1SharedLoadTransactions, "# of shared load transactions"},
	{Event, FBSubp0ReadSectors, "# of DRAM read request to sub partition 0"},
	{Event, FBSubp1ReadSectors, "# of DRAM read request to sub partition 1"},
	{Event, L2Subp0ReadL1HitSectors, "# of read requests from L1 that hit in slice 0 of L2 cache"},
	{Event, L2Subp1ReadL1HitSectors, "# of read requests from L1 that hit in slice 1 of L2 cache"},
	{Event, L2Subp2ReadL1HitSectors, "# of read requests from L1 that hit in slice 2 of L2 cache"},
	{Event, L2Subp3ReadL1HitSectors, "# of read requests from L1 that hit in slice 3 of L2 cache"},
	{Event, GSTRequest, "# of store instructions"},
	{Event, L2Subp0TotalWriteQueries, "Total write request to slice 0 of L2 cache"},
	{Event, L1SharedStoreTransaction, "# of shared store transactions"},
}

// Lookup returns the descriptor for a counter name.
func Lookup(name string) (Descriptor, bool) {
	for _, d := range Registry {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// Hardware geometry constants for the Tegra K1's Kepler GPU, used when
// converting transaction counts to bytes.
const (
	SectorBytes      = 32  // L2/DRAM sector size
	L1LineBytes      = 128 // L1 cache line size
	SharedTransBytes = 128 // shared-memory transaction width (32 banks x 4 B)
	WordBytes        = 4   // the energy model's "mop" unit: one 32-bit word
	L2Slices         = 4   // L2 slice count (subp0..subp3)
)

// Set is a bag of recorded counter values keyed by counter name.
type Set map[string]float64

// Add accumulates v into counter name.
func (s Set) Add(name string, v float64) { s[name] += v }

// Merge adds every counter of other into s.
func (s Set) Merge(other Set) {
	for k, v := range other {
		s[k] += v
	}
}

// Names returns the recorded counter names in sorted order.
func (s Set) Names() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate reports an error if the set contains an unknown counter name
// or a negative value.
func (s Set) Validate() error {
	for k, v := range s {
		if _, ok := Lookup(k); !ok {
			return fmt.Errorf("counters: unknown counter %q", k)
		}
		if v < 0 {
			return fmt.Errorf("counters: negative value %g for %q", v, k)
		}
	}
	return nil
}

// Profile is the operation breakdown the energy model consumes: floating
// point and integer instruction counts, and word (32-bit) traffic per
// memory-hierarchy level. It corresponds to the stacked bars of the
// paper's Figure 4.
type Profile struct {
	DPFMA float64 // double-precision fused multiply-add instructions
	DPAdd float64 // double-precision add instructions
	DPMul float64 // double-precision multiply instructions
	SP    float64 // single-precision flop instructions (zero for the DP FMM)
	Int   float64 // integer instructions

	SharedWords float64 // words served by shared memory
	L1Words     float64 // words served by the L1 cache
	L2Words     float64 // words served by the L2 cache
	DRAMWords   float64 // words served by DRAM
}

// Add returns the element-wise sum of two profiles.
func (p Profile) Add(q Profile) Profile {
	return Profile{
		DPFMA: p.DPFMA + q.DPFMA, DPAdd: p.DPAdd + q.DPAdd,
		DPMul: p.DPMul + q.DPMul, SP: p.SP + q.SP, Int: p.Int + q.Int,
		SharedWords: p.SharedWords + q.SharedWords,
		L1Words:     p.L1Words + q.L1Words,
		L2Words:     p.L2Words + q.L2Words,
		DRAMWords:   p.DRAMWords + q.DRAMWords,
	}
}

// Scale returns the profile multiplied element-wise by k.
func (p Profile) Scale(k float64) Profile {
	return Profile{
		DPFMA: p.DPFMA * k, DPAdd: p.DPAdd * k, DPMul: p.DPMul * k,
		SP: p.SP * k, Int: p.Int * k,
		SharedWords: p.SharedWords * k, L1Words: p.L1Words * k,
		L2Words: p.L2Words * k, DRAMWords: p.DRAMWords * k,
	}
}

// Instructions returns the total computation instruction count.
func (p Profile) Instructions() float64 {
	return p.DPFMA + p.DPAdd + p.DPMul + p.SP + p.Int
}

// DPFlops returns the double-precision flop count, with FMA counted as
// two flops.
func (p Profile) DPFlops() float64 { return 2*p.DPFMA + p.DPAdd + p.DPMul }

// Accesses returns the total word traffic across all hierarchy levels.
func (p Profile) Accesses() float64 {
	return p.SharedWords + p.L1Words + p.L2Words + p.DRAMWords
}

// IntegerFraction returns the integer share of computation instructions
// (the paper observes ~60% for the FMM).
func (p Profile) IntegerFraction() float64 {
	t := p.Instructions()
	if t == 0 {
		return 0
	}
	return p.Int / t
}

// DRAMFraction returns the DRAM share of all word accesses (the paper
// observes ~13% for the FMM).
func (p Profile) DRAMFraction() float64 {
	t := p.Accesses()
	if t == 0 {
		return 0
	}
	return p.DRAMWords / t
}

// Derive reconstructs a Profile from raw counter events exactly the way
// the paper does (Section IV-A): instruction counts are read from the
// corresponding metrics; bytes per hierarchy level are read from counter
// metrics or inferred from combinations of events — e.g. reads served by
// the L2 cache are the total L2 read queries minus the bytes that had to
// come from DRAM.
func Derive(s Set) (Profile, error) {
	if err := s.Validate(); err != nil {
		return Profile{}, err
	}
	var p Profile
	p.DPFMA = s[FlopsDPFMA]
	p.DPAdd = s[FlopsDPAdd]
	p.DPMul = s[FlopsDPMul]
	p.Int = s[InstInteger]

	dramBytes := (s[FBSubp0ReadSectors] + s[FBSubp1ReadSectors]) * SectorBytes
	// Total L2 read traffic: the per-slice counter scaled to all slices.
	l2TotalBytes := s[L2Subp0TotalReadQueries] * L2Slices * SectorBytes
	l2HitBytes := l2TotalBytes - dramBytes
	if l2HitBytes < 0 {
		return Profile{}, fmt.Errorf("counters: inconsistent events: DRAM bytes %.0f exceed total L2 queries %.0f", dramBytes, l2TotalBytes)
	}
	l1Bytes := s[L1GlobalLoadHit] * L1LineBytes
	sharedBytes := (s[L1SharedLoadTransactions] + s[L1SharedStoreTransaction]) * SharedTransBytes

	// Write traffic through the L2 counts as L2 words as well.
	l2WriteBytes := s[L2Subp0TotalWriteQueries] * L2Slices * SectorBytes

	p.SharedWords = sharedBytes / WordBytes
	p.L1Words = l1Bytes / WordBytes
	p.L2Words = (l2HitBytes + l2WriteBytes) / WordBytes
	p.DRAMWords = dramBytes / WordBytes
	return p, nil
}

// Emit converts a Profile back into the raw counter events a profiler
// would have recorded for it. Derive(Emit(p)) == p for profiles whose
// byte counts are representable in whole transactions; the FMM
// instrumentation emits events through this path so that the analysis
// pipeline exercises the same event arithmetic as the paper's scripts.
func Emit(p Profile) Set {
	s := Set{}
	s[FlopsDPFMA] = p.DPFMA
	s[FlopsDPAdd] = p.DPAdd
	s[FlopsDPMul] = p.DPMul
	s[InstInteger] = p.Int

	dramBytes := p.DRAMWords * WordBytes
	s[FBSubp0ReadSectors] = dramBytes / 2 / SectorBytes
	s[FBSubp1ReadSectors] = dramBytes / 2 / SectorBytes

	// All L2 hit traffic is read traffic in this emission; total L2 read
	// queries include the misses that went to DRAM.
	l2Bytes := p.L2Words * WordBytes
	s[L2Subp0TotalReadQueries] = (l2Bytes + dramBytes) / L2Slices / SectorBytes
	for i, name := range []string{L2Subp0ReadL1HitSectors, L2Subp1ReadL1HitSectors, L2Subp2ReadL1HitSectors, L2Subp3ReadL1HitSectors} {
		_ = i
		s[name] = l2Bytes / L2Slices / SectorBytes
	}
	s[L1GlobalLoadHit] = p.L1Words * WordBytes / L1LineBytes
	s[L1SharedLoadTransactions] = p.SharedWords * WordBytes / SharedTransBytes
	s[L1SharedStoreTransaction] = 0
	s[L2Subp0TotalWriteQueries] = 0

	// One load instruction per 32-word coalesced request approximates the
	// gld/gst counters; they are informational and not used by Derive.
	s[GLDRequest] = (p.L1Words + p.L2Words + p.DRAMWords) / 32
	s[GSTRequest] = 0
	return s
}
