package fmm_test

import (
	"fmt"

	"dvfsroofline/internal/fmm"
)

func ExampleEvaluate() {
	pts := fmm.GeneratePoints(fmm.Uniform, 2000, 1)
	dens := fmm.GenerateDensities(2000, 2)
	res, err := fmm.Evaluate(pts, dens, fmm.Options{Q: 50})
	if err != nil {
		fmt.Println(err)
		return
	}
	exact := fmm.DirectSum(pts, dens, nil, 0)
	fmt.Println("error below 1e-3:", fmm.RelErrL2(res.Potentials, exact) < 1e-3)
	fmt.Println("leaves:", res.Tree.NumLeaves())
	// Output:
	// error below 1e-3: true
	// leaves: 64
}

func ExampleEvaluateAt() {
	sources := fmm.GeneratePoints(fmm.Plummer, 3000, 3)
	dens := fmm.GenerateDensities(3000, 4)
	probes := []fmm.Point{{X: 0.5, Y: 0.5, Z: 0.5}}
	res, err := fmm.EvaluateAt(probes, sources, dens, fmm.Options{Q: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	exact := fmm.DirectSumAt(probes, sources, dens, nil, 1)
	rel := (res.Potentials[0] - exact[0]) / exact[0]
	if rel < 0 {
		rel = -rel
	}
	fmt.Println("probe matches direct sum to 1e-3:", rel < 1e-3)
	// Output: probe matches direct sum to 1e-3: true
}

func ExampleSurfaceCount() {
	fmt.Println(fmm.SurfaceCount(4), fmm.SurfaceCount(6))
	// Output: 56 152
}
