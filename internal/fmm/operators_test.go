package fmm

import (
	"math"
	"testing"
)

// newTestOps returns an operator set on a unit root box.
func newTestOps(p int) *operatorSet {
	return newOperatorSet(Laplace{}, p, 0.5)
}

func TestEquivalentDensityReproducesFarField(t *testing.T) {
	// The defining KIFMM property: solving for an upward equivalent
	// density from check-surface potentials reproduces the source's far
	// field outside the check surface.
	ops := newTestOps(6)
	lv := ops.at(0)
	h := 0.5
	k := Laplace{}

	// A few interior sources with random-ish densities.
	sources := []Point{{0.1, -0.2, 0.05}, {-0.3, 0.25, -0.1}, {0.0, 0.4, 0.3}}
	dens := []float64{1.0, -0.7, 0.4}

	// Check potential on the upward check surface.
	uc := placeSurface(ops.unitSurf, Point{}, h, checkRadius)
	chk := make([]float64, len(uc))
	evalSum(k, uc, chk, sources, dens)

	// Equivalent density on the box surface.
	equiv := lv.uc2ue.MulVec(chk)
	ue := placeSurface(ops.unitSurf, Point{}, h, equivRadius)

	// Probe far points (well outside the check surface).
	probes := []Point{{5, 0, 0}, {3, 3, 3}, {0, -4, 2}, {2.2, -1.7, 0.4}}
	for _, p := range probes {
		var exact, approx float64
		for j, s := range sources {
			exact += k.Eval(p.X-s.X, p.Y-s.Y, p.Z-s.Z) * dens[j]
		}
		for j, s := range ue {
			approx += k.Eval(p.X-s.X, p.Y-s.Y, p.Z-s.Z) * equiv[j]
		}
		if rel := math.Abs(approx-exact) / math.Abs(exact); rel > 1e-5 {
			t.Errorf("probe %v: equivalent field %v vs exact %v (rel %.2e)", p, approx, exact, rel)
		}
	}
}

func TestM2MPreservesFarField(t *testing.T) {
	// Translating a child's equivalent density to its parent must
	// preserve the far field.
	ops := newTestOps(6)
	parent := ops.at(0)
	_ = ops.at(1)
	h := 0.5
	k := Laplace{}

	// Source inside child octant 0 (center (-h/2,-h/2,-h/2)).
	childCenter := octantCenter(Point{}, h, 0)
	sources := []Point{childCenter.Add(Point{0.05, -0.03, 0.08})}
	dens := []float64{1.25}

	// Child P2M.
	childOps := ops.at(1)
	cc := placeSurface(ops.unitSurf, childCenter, h/2, checkRadius)
	chk := make([]float64, len(cc))
	evalSum(k, cc, chk, sources, dens)
	childEquiv := childOps.uc2ue.MulVec(chk)

	// M2M: child equivalent -> parent check -> parent equivalent.
	parentChk := parent.m2m[0].MulVec(childEquiv)
	parentEquiv := parent.uc2ue.MulVec(parentChk)
	ue := placeSurface(ops.unitSurf, Point{}, h, equivRadius)

	for _, p := range []Point{{4, 1, 0}, {-3, -3, 3}, {0, 5, -2}} {
		var exact, approx float64
		for j, s := range sources {
			exact += k.Eval(p.X-s.X, p.Y-s.Y, p.Z-s.Z) * dens[j]
		}
		for j, s := range ue {
			approx += k.Eval(p.X-s.X, p.Y-s.Y, p.Z-s.Z) * parentEquiv[j]
		}
		if rel := math.Abs(approx-exact) / math.Abs(exact); rel > 1e-4 {
			t.Errorf("probe %v: M2M field %v vs exact %v (rel %.2e)", p, approx, exact, rel)
		}
	}
}

func TestOperatorCachePerLevel(t *testing.T) {
	ops := newTestOps(4)
	a := ops.at(2)
	b := ops.at(2)
	if a != b {
		t.Error("level operators not cached")
	}
	if ops.at(3) == a {
		t.Error("different levels share an operator set")
	}
	// Setup eval counting is monotone and non-zero.
	if ops.evalCount <= 0 {
		t.Error("no setup evaluations recorded")
	}
}

func TestM2LForCachesPerOffset(t *testing.T) {
	ops := newTestOps(4)
	off := [3]int8{2, 0, -1}
	a := ops.m2lFor(1, off)
	b := ops.m2lFor(1, off)
	if a != b {
		t.Error("M2L operator not cached per offset")
	}
	if ops.m2lFor(1, [3]int8{0, 2, 0}) == a {
		t.Error("distinct offsets share an M2L operator")
	}
}

func TestVOffset(t *testing.T) {
	h := 0.125
	a := &Node{Center: Point{0.5, 0.5, 0.5}, Half: h}
	b := &Node{Center: Point{0.5 + 2*2*h, 0.5 - 3*2*h, 0.5}, Half: h}
	off := vOffset(a, b)
	if off != [3]int8{-2, 3, 0} {
		t.Errorf("vOffset = %v, want [-2 3 0]", off)
	}
	// Antisymmetry.
	rev := vOffset(b, a)
	if rev != [3]int8{2, -3, 0} {
		t.Errorf("reverse vOffset = %v, want [2 -3 0]", rev)
	}
}

func TestKernelMatrixShapeAndSymmetry(t *testing.T) {
	ops := newTestOps(3)
	a := placeSurface(ops.unitSurf, Point{}, 0.5, 1.0)
	b := placeSurface(ops.unitSurf, Point{3, 0, 0}, 0.5, 1.0)
	m := ops.kernelMatrix(a, b)
	if m.Rows != len(a) || m.Cols != len(b) {
		t.Fatalf("kernel matrix %dx%d, want %dx%d", m.Rows, m.Cols, len(a), len(b))
	}
	// Laplace is symmetric in its arguments: K(x,y) = K(y,x).
	mt := ops.kernelMatrix(b, a)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-mt.At(j, i)) > 1e-15 {
				t.Fatal("kernel matrix not symmetric under argument swap")
			}
		}
	}
}

func TestHalfAt(t *testing.T) {
	ops := newTestOps(4)
	if ops.halfAt(0) != 0.5 {
		t.Errorf("halfAt(0) = %v", ops.halfAt(0))
	}
	if ops.halfAt(3) != 0.0625 {
		t.Errorf("halfAt(3) = %v, want 0.0625", ops.halfAt(3))
	}
}

func TestRoundInt(t *testing.T) {
	cases := map[float64]int{2.4: 2, 2.6: 3, -2.4: -2, -2.6: -3, 0: 0, 0.5: 1, -0.5: -1}
	for in, want := range cases {
		if got := roundInt(in); got != want {
			t.Errorf("roundInt(%v) = %d, want %d", in, got, want)
		}
	}
}
