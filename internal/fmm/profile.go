package fmm

import (
	"fmt"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/fft"
)

// Phase enumerates the six computation phases of the FMM evaluation
// (paper §III-B): one per interaction list plus the upward and downward
// tree passes.
type Phase int

const (
	PhaseUp Phase = iota
	PhaseU
	PhaseV
	PhaseW
	PhaseX
	PhaseDown
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseUp:
		return "UP"
	case PhaseU:
		return "U"
	case PhaseV:
		return "V"
	case PhaseW:
		return "W"
	case PhaseX:
		return "X"
	case PhaseDown:
		return "DOWN"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases returns all phases in execution order.
func Phases() []Phase {
	return []Phase{PhaseUp, PhaseV, PhaseX, PhaseDown, PhaseW, PhaseU}
}

// Occupancy returns the issue efficiency the phase's kernels achieve on
// the simulated device. The paper measures its FMM at under a quarter of
// peak IPC (§IV-C); direct-interaction phases are latency-bound on
// rsqrt/divide, translation phases slightly better.
func (p Phase) Occupancy() float64 {
	switch p {
	case PhaseU:
		return 0.25
	case PhaseV:
		return 0.35
	case PhaseW, PhaseX:
		return 0.28
	default: // UP, DOWN: matvec-dominated
		return 0.32
	}
}

// tally accumulates raw structural counts for one phase; Profile()
// converts them to instruction and traffic counts.
type tally struct {
	kernelEvals  int64 // kernel evaluation + accumulate pairs
	matvecOps    int64 // dense matrix-vector multiply-accumulate elements
	fftFlops     float64
	fftPoints    int64 // complex grid points touched by pointwise stages
	tileWords    int64 // source-tile words staged from L2/DRAM
	gridReads    int64 // FFT-grid words read per V-list pair
	smWords      int64 // words explicitly staged through shared memory
	streamWords  int64 // words streamed exactly once (DRAM)
	operandWords int64 // small per-op operand words (L1-resident)
}

// Memory-hierarchy assignment heuristics, calibrated to the Kepler
// GPU's tiling strategy and the TK1's cache sizes (48 KB shared, 16 KB
// L1, 128 KB L2). See DESIGN.md §2 for why these stand in for the
// paper's nvprof measurements.
const (
	// smWordsPerEval: shared-memory words read per direct interaction —
	// a staged source point (4 doubles) is broadcast across a warp, so
	// each interaction accounts for 8/2 = 4 words of shared traffic.
	smWordsPerEval = 4
	// tileL2Fraction: fraction of source-tile staging traffic served by
	// the L2; the rest misses to DRAM (the per-phase point working set
	// far exceeds the TK1's 128 KB L2).
	tileL2Fraction = 0.5
	// gridDRAMFraction: fraction of V-phase FFT-grid reads that miss to
	// DRAM — per-level grid working sets are tens of MB against the
	// TK1's 128 KB L2, partially mitigated by offset-ordered batching.
	// This is the paper's observation that the V phase is memory-
	// bandwidth bound.
	gridDRAMFraction = 0.35
	// matvecIntPerOp: integer index instructions per dense matvec MAC.
	matvecIntPerOp = 1.5
	// fftIntPerFlop: integer (index/twiddle/bit-reversal) instructions
	// per FFT flop.
	fftIntPerFlop = 1.0
)

// Profile converts the raw tallies to the operation profile the energy
// model consumes.
func (t *tally) Profile() counters.Profile {
	var p counters.Profile

	// Instructions.
	ke := float64(t.kernelEvals)
	p.DPFMA += ke * evalDPFMA
	p.DPMul += ke * evalDPMul
	p.DPAdd += ke * evalDPAdd
	p.Int += ke * evalInt

	mv := float64(t.matvecOps)
	p.DPFMA += mv
	p.Int += mv * matvecIntPerOp

	p.DPMul += t.fftFlops * 0.4
	p.DPAdd += t.fftFlops * 0.6
	p.Int += t.fftFlops * fftIntPerFlop

	// Pointwise spectral stage: one complex multiply-accumulate (4 FMA)
	// plus the 3-D grid index arithmetic (~6 integer ops) per point.
	fp := float64(t.fftPoints)
	p.DPFMA += fp * 4
	p.Int += fp * 6

	// Traffic.
	p.SharedWords += ke*smWordsPerEval + float64(t.smWords)
	// Dense matvec operands stream through shared memory as well (the
	// operator tile) at ~1 word per MAC.
	p.SharedWords += mv

	tw := float64(t.tileWords)
	p.L2Words += tw * tileL2Fraction
	p.DRAMWords += tw * (1 - tileL2Fraction)

	gr := float64(t.gridReads)
	p.DRAMWords += gr * gridDRAMFraction
	p.L2Words += gr * (1 - gridDRAMFraction)

	p.DRAMWords += float64(t.streamWords)
	p.L1Words += float64(t.operandWords)
	return p
}

// PhaseProfiles maps each phase to its operation profile.
type PhaseProfiles [NumPhases]counters.Profile

// Total returns the sum over phases.
func (pp PhaseProfiles) Total() counters.Profile {
	var out counters.Profile
	for _, p := range pp {
		out = out.Add(p)
	}
	return out
}

const (
	pointWords  = 8 // 3 coordinates + 1 density, as 32-bit words
	targetWords = 6 // 3 coordinates
	dpWords     = 2 // one double
)

// countPhases derives the exact per-phase tallies from the tree
// structure. This pass is separate from the (parallel) numerical
// evaluation so that counts are deterministic and exact.
func countPhases(t *Tree, nsurf int, useFFT bool, surfaceOrder int) [NumPhases]tally {
	var ts [NumPhases]tally
	ns := int64(nsurf)
	ns2 := ns * ns

	// Per-level V-pair counts for the FFT variant.
	type levelAgg struct {
		sources map[int32]bool
		targets int64
		pairs   int64
	}
	levels := map[int]*levelAgg{}

	for i := range t.Nodes {
		n := &t.Nodes[i]
		nsrcLeaf := int64(n.NumSources())
		ntrg := int64(n.NumTargets())

		// UP phase.
		if n.Leaf {
			ts[PhaseUp].kernelEvals += nsrcLeaf * ns // P2M source -> check
			ts[PhaseUp].matvecOps += ns2             // check -> equivalent
			ts[PhaseUp].tileWords += nsrcLeaf * pointWords
			ts[PhaseUp].operandWords += ns * dpWords
		} else {
			for _, c := range n.Children {
				if c != nilNode {
					ts[PhaseUp].matvecOps += ns2 // M2M child -> parent check
					ts[PhaseUp].operandWords += ns * dpWords
				}
			}
			ts[PhaseUp].matvecOps += ns2 // check -> equivalent
		}

		// V phase.
		if len(n.V) > 0 {
			if useFFT {
				la := levels[n.Level]
				if la == nil {
					la = &levelAgg{sources: map[int32]bool{}}
					levels[n.Level] = la
				}
				la.targets++
				la.pairs += int64(len(n.V))
				for _, v := range n.V {
					la.sources[v] = true
				}
			} else {
				ts[PhaseV].matvecOps += int64(len(n.V)) * ns2
				ts[PhaseV].gridReads += int64(len(n.V)) * ns * dpWords
				ts[PhaseV].operandWords += ns * dpWords
			}
		}

		// X phase: source points of each X-list member to this node's
		// check surface.
		for _, x := range n.X {
			nx := int64(t.Nodes[x].NumSources())
			ts[PhaseX].kernelEvals += nx * ns
			ts[PhaseX].tileWords += nx * pointWords
		}

		// DOWN phase.
		ts[PhaseDown].matvecOps += ns2 // check -> downward equivalent
		if n.Parent != nilNode {
			ts[PhaseDown].matvecOps += ns2 // L2L
			ts[PhaseDown].operandWords += ns * dpWords
		}
		if n.Leaf {
			ts[PhaseDown].kernelEvals += ntrg * ns // L2P
			ts[PhaseDown].streamWords += ntrg * (targetWords + dpWords)
		}

		if !n.Leaf {
			continue
		}

		// U phase: direct interactions against adjacent leaves.
		for _, u := range n.U {
			src := int64(t.Nodes[u].NumSources())
			ts[PhaseU].kernelEvals += ntrg * src
			ts[PhaseU].tileWords += src * pointWords
		}
		ts[PhaseU].streamWords += ntrg * (targetWords + dpWords)

		// W phase: W-member equivalent densities evaluated at targets.
		for range n.W {
			ts[PhaseW].kernelEvals += ntrg * ns
			ts[PhaseW].tileWords += ns * dpWords
		}
	}

	if useFFT {
		m := 2 * surfaceOrder
		nfft := int64(m * m * m)
		fftCost := fft.FlopEstimate(int(nfft))
		for _, la := range levels {
			nodes := int64(len(la.sources)) + la.targets
			ts[PhaseV].fftFlops += float64(nodes) * fftCost
			ts[PhaseV].fftPoints += la.pairs * nfft
			// Per pair: the source box's spectral grid is fetched (complex
			// = 2 doubles per point) while the target accumulator lives in
			// shared memory (read + write per point). Kernel grids are
			// batched per offset and amortize to noise.
			ts[PhaseV].gridReads += la.pairs * nfft * 2 * dpWords
			ts[PhaseV].smWords += la.pairs * nfft * 2 * dpWords
		}
	}
	return ts
}
