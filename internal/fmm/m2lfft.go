package fmm

import (
	"sync"

	"dvfsroofline/internal/fft"
)

// FFT-accelerated M2L (V-list) translation, the variant the paper's GPU
// implementation uses (§III-B: the V list "approximates interactions with
// far neighbors through fast Fourier transforms").
//
// The trick (Ying et al.): equivalent and check surface points lie on the
// p³ lattice of each box, and same-level boxes are offset by exactly
// (p-1) lattice steps, so the check potentials of a target box are a 3-D
// discrete convolution of the source box's equivalent densities with
// kernel samples on the relative lattice. Embedding both in a (2p)³
// cyclic grid turns every V-list interaction into a pointwise product in
// Fourier space:
//
//	T̂_target += Ĝ_offset ⊙ q̂_source
//
// with one forward FFT per source box, one inverse FFT per target box,
// and O(M³) work per pair instead of O(nsurf²).

// latticeIndex converts a surface-point coordinate (in units of the box's
// lattice with spacing 2h/(p-1), centered on the box) to grid indices
// 0..p-1 per axis.
func latticeIndex(u Point, p int) (int, int, int) {
	// unit surface coordinates are in [-1, 1] with spacing 2/(p-1)
	f := float64(p-1) / 2
	return roundInt((u.X + 1) * f), roundInt((u.Y + 1) * f), roundInt((u.Z + 1) * f)
}

// fftPlan holds the per-level spectral kernels and scratch geometry.
type fftPlan struct {
	p    int // surface order
	m    int // grid extent per axis = 2p
	dim  fft.Dim3
	surf []Point // unit surface grid
	// surfIdx[i] is the linear grid index of unit-surface point i.
	surfIdx []int

	mu      sync.Mutex
	kernels map[[3]int8][]complex128 // per offset: Ĝ on the cyclic grid
}

func newFFTPlan(p int, surf []Point) *fftPlan {
	m := 2 * p
	plan := &fftPlan{
		p: p, m: m,
		dim:     fft.Dim3{Nx: m, Ny: m, Nz: m},
		surf:    surf,
		surfIdx: make([]int, len(surf)),
		kernels: make(map[[3]int8][]complex128),
	}
	for i, u := range surf {
		ix, iy, iz := latticeIndex(u, p)
		plan.surfIdx[i] = plan.dim.Index(ix, iy, iz)
	}
	return plan
}

// kernelHat returns (building if needed) the spectral kernel for a V-list
// offset at the given box half-width. G[d] = K((offset·(p-1) + d)·δ) for
// relative lattice displacements d ∈ (-p, p)³, embedded cyclically.
func (pl *fftPlan) kernelHat(k Kernel, off [3]int8, h float64) []complex128 {
	pl.mu.Lock()
	if g, ok := pl.kernels[off]; ok {
		pl.mu.Unlock()
		return g
	}
	pl.mu.Unlock()

	delta := 2 * h / float64(pl.p-1)
	base := [3]float64{
		float64(off[0]) * float64(pl.p-1) * delta,
		float64(off[1]) * float64(pl.p-1) * delta,
		float64(off[2]) * float64(pl.p-1) * delta,
	}
	g := make([]complex128, pl.dim.Len())
	for dx := -pl.p + 1; dx < pl.p; dx++ {
		for dy := -pl.p + 1; dy < pl.p; dy++ {
			for dz := -pl.p + 1; dz < pl.p; dz++ {
				v := k.Eval(base[0]+float64(dx)*delta, base[1]+float64(dy)*delta, base[2]+float64(dz)*delta)
				g[pl.dim.Index(mod(dx, pl.m), mod(dy, pl.m), mod(dz, pl.m))] = complex(v, 0)
			}
		}
	}
	fft.Forward3(g, pl.dim)

	pl.mu.Lock()
	if exist, ok := pl.kernels[off]; ok {
		g = exist
	} else {
		pl.kernels[off] = g
	}
	pl.mu.Unlock()
	return g
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// vPhaseFFT computes the V phase through the spectral path, level by
// level: forward-transform every source box's equivalent densities,
// accumulate Ĝ⊙q̂ per target, inverse-transform, and scatter the surface
// values into the downward check potentials.
func (e *engine) vPhaseFFT() {
	p := e.opt.SurfaceOrder
	plan := newFFTPlan(p, e.ops.unitSurf)
	dim := plan.dim

	for lvl := range e.byLevel {
		// Collect this level's targets and the sources they reference.
		var targets []int
		sources := map[int32]bool{}
		for _, i := range e.byLevel[lvl] {
			n := &e.t.Nodes[i]
			if len(n.V) == 0 {
				continue
			}
			targets = append(targets, i)
			for _, v := range n.V {
				sources[v] = true
			}
		}
		if len(targets) == 0 {
			continue
		}
		// The kernel grids depend on the level's box size; per-level plans
		// keep the method kernel-independent (no homogeneity assumption).
		levelPlan := newFFTPlan(p, e.ops.unitSurf)
		h := e.ops.halfAt(lvl)

		// Forward FFT per source box.
		qhat := make(map[int32][]complex128, len(sources))
		var mu sync.Mutex
		srcList := make([]int, 0, len(sources))
		for s := range sources {
			srcList = append(srcList, int(s))
		}
		e.parallelNodes(srcList, func(si int) {
			grid := make([]complex128, dim.Len())
			for k, idx := range plan.surfIdx {
				grid[idx] = complex(e.upEquiv[si][k], 0)
			}
			fft.Forward3(grid, dim)
			mu.Lock()
			qhat[int32(si)] = grid
			mu.Unlock()
		})

		// Pre-build kernel grids sequentially for determinism.
		for _, ti := range targets {
			n := &e.t.Nodes[ti]
			for _, v := range n.V {
				levelPlan.kernelHat(e.opt.Kernel, vOffset(n, &e.t.Nodes[v]), h)
			}
		}

		// Accumulate spectrally and invert per target.
		e.parallelNodes(targets, func(ti int) {
			n := &e.t.Nodes[ti]
			acc := make([]complex128, dim.Len())
			for _, v := range n.V {
				ghat := levelPlan.kernelHat(e.opt.Kernel, vOffset(n, &e.t.Nodes[v]), h)
				src := qhat[v]
				for k := range acc {
					acc[k] += ghat[k] * src[k]
				}
			}
			fft.Inverse3(acc, dim)
			dst := e.dnCheck[ti]
			for k, idx := range plan.surfIdx {
				dst[k] += real(acc[idx])
			}
		})
	}
}
