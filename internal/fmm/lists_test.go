package fmm

import "testing"

// buildListedTree builds a tree with lists for tests.
func buildListedTree(t *testing.T, d Distribution, n, q int, seed int64) *Tree {
	t.Helper()
	pts := GeneratePoints(d, n, seed)
	tree, err := BuildTree(pts, q, 20)
	if err != nil {
		t.Fatal(err)
	}
	tree.BuildLists()
	return tree
}

// isAncestorOrSelf reports whether a is an ancestor of b (or b itself).
func isAncestorOrSelf(t *Tree, a, b int) bool {
	for b != nilNode {
		if b == a {
			return true
		}
		b = t.Nodes[b].Parent
	}
	return false
}

func TestInteractionCoverage(t *testing.T) {
	// THE correctness invariant of FMM interaction lists: every
	// (target leaf, source leaf) pair must be accounted for exactly once
	// across U (direct), V (M2L at some ancestor), W (equivalent-density
	// evaluation) and X (direct-to-check at some ancestor).
	for _, d := range []Distribution{Uniform, Plummer, SphereSurface} {
		tree := buildListedTree(t, d, 1500, 20, 9)
		leaves := tree.Leaves()
		for _, tb := range leaves {
			// Collect ancestors of the target leaf (including itself).
			var ancestors []int
			for a := tb; a != nilNode; a = tree.Nodes[a].Parent {
				ancestors = append(ancestors, a)
			}
			for _, sb := range leaves {
				cover := 0
				for _, u := range tree.Nodes[tb].U {
					if int(u) == sb {
						cover++
					}
				}
				for _, anc := range ancestors {
					for _, v := range tree.Nodes[anc].V {
						if isAncestorOrSelf(tree, int(v), sb) {
							cover++
						}
					}
					for _, x := range tree.Nodes[anc].X {
						if int(x) == sb {
							cover++
						}
					}
				}
				for _, w := range tree.Nodes[tb].W {
					if isAncestorOrSelf(tree, int(w), sb) {
						cover++
					}
				}
				if cover != 1 {
					t.Fatalf("%v: pair (target %d, source %d) covered %d times", d, tb, sb, cover)
				}
			}
		}
	}
}

func TestUListSymmetricAndContainsSelf(t *testing.T) {
	tree := buildListedTree(t, Plummer, 2000, 30, 4)
	for _, li := range tree.Leaves() {
		n := &tree.Nodes[li]
		foundSelf := false
		for _, u := range n.U {
			if int(u) == li {
				foundSelf = true
			}
			// Symmetry: li must appear in u's U list.
			back := false
			for _, v := range tree.Nodes[u].U {
				if int(v) == li {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("U list not symmetric between %d and %d", li, u)
			}
		}
		if !foundSelf {
			t.Fatalf("leaf %d missing from its own U list", li)
		}
	}
}

func TestVListProperties(t *testing.T) {
	tree := buildListedTree(t, Uniform, 4096, 60, 8)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		for _, v := range n.V {
			vn := &tree.Nodes[v]
			if vn.Level != n.Level {
				t.Fatalf("V member %d at level %d, target %d at level %d", v, vn.Level, i, n.Level)
			}
			if adjacent(vn, n) {
				t.Fatalf("V member %d adjacent to target %d", v, i)
			}
			if !adjacent(&tree.Nodes[vn.Parent], &tree.Nodes[n.Parent]) {
				t.Fatalf("V member %d's parent not adjacent to target %d's parent", v, i)
			}
			// Offset must be within the standard [-3,3] range.
			off := vOffset(n, vn)
			for _, o := range off {
				if o < -3 || o > 3 {
					t.Fatalf("V offset %v out of range", off)
				}
			}
		}
	}
}

func TestWXDuality(t *testing.T) {
	tree := buildListedTree(t, Plummer, 3000, 25, 5)
	// X(B) = {A : B ∈ W(A)}; check both directions.
	for i := range tree.Nodes {
		for _, x := range tree.Nodes[i].X {
			found := false
			for _, w := range tree.Nodes[x].W {
				if int(w) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("X member %d of node %d lacks the dual W entry", x, i)
			}
		}
		if tree.Nodes[i].Leaf {
			for _, w := range tree.Nodes[i].W {
				found := false
				for _, x := range tree.Nodes[w].X {
					if int(x) == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("W member %d of leaf %d lacks the dual X entry", w, i)
				}
			}
		}
	}
}

func TestWListProperties(t *testing.T) {
	tree := buildListedTree(t, Plummer, 3000, 25, 6)
	for _, li := range tree.Leaves() {
		n := &tree.Nodes[li]
		for _, w := range n.W {
			wn := &tree.Nodes[w]
			if wn.Level <= n.Level {
				t.Fatalf("W member %d not finer than leaf %d", w, li)
			}
			if adjacent(wn, n) {
				t.Fatalf("W member %d adjacent to leaf %d", w, li)
			}
			if !adjacent(&tree.Nodes[wn.Parent], n) {
				t.Fatalf("W member %d's parent not adjacent to leaf %d", w, li)
			}
		}
	}
}

func TestUniformTreeHasEmptyWX(t *testing.T) {
	// A complete (level-uniform) tree has no W/X interactions: they only
	// arise from leaves at different levels.
	pts := GeneratePoints(Uniform, 4096, 10)
	tree, err := BuildTree(pts, 4096/64+60, 20) // leaves at one level
	if err != nil {
		t.Fatal(err)
	}
	tree.BuildLists()
	s := tree.Stats()
	levels := map[int]bool{}
	for _, li := range tree.Leaves() {
		levels[tree.Nodes[li].Level] = true
	}
	if len(levels) == 1 && (s.TotalW != 0 || s.TotalX != 0) {
		t.Errorf("level-uniform tree has W=%d X=%d entries", s.TotalW, s.TotalX)
	}
}

func TestListBoundedness(t *testing.T) {
	// The FMM's O(N) bound rests on constant-bounded list lengths:
	// V ≤ 6³-3³ = 189 always; U bounded for bounded level difference.
	tree := buildListedTree(t, Plummer, 5000, 30, 12)
	s := tree.Stats()
	if s.MaxV > 189 {
		t.Errorf("max V list length %d exceeds the theoretical bound 189", s.MaxV)
	}
	if s.MaxU == 0 || s.TotalU == 0 {
		t.Error("U lists unexpectedly empty")
	}
}
