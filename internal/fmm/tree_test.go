package fmm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuildTreeValidates(t *testing.T) {
	for _, d := range []Distribution{Uniform, Plummer, SphereSurface} {
		pts := GeneratePoints(d, 3000, 42)
		tree, err := BuildTree(pts, 40, 20)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := tree.Validate(); err != nil {
			t.Errorf("%v: %v", d, err)
		}
		if tree.NumLeaves() < 8 {
			t.Errorf("%v: suspiciously few leaves: %d", d, tree.NumLeaves())
		}
	}
}

func TestBuildTreeErrors(t *testing.T) {
	pts := GeneratePoints(Uniform, 10, 1)
	if _, err := BuildTree(nil, 10, 20); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := BuildTree(pts, 0, 20); err == nil {
		t.Error("Q=0 accepted")
	}
	if _, err := BuildTree(pts, 10, -1); err == nil {
		t.Error("negative max level accepted")
	}
}

func TestTreeSinglePoint(t *testing.T) {
	tree, err := BuildTree([]Point{{0.5, 0.5, 0.5}}, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 || !tree.Nodes[0].Leaf {
		t.Error("single point should build a single leaf root")
	}
}

func TestTreeCoincidentPointsRespectMaxLevel(t *testing.T) {
	// Coincident points can never be separated; the MaxLevel bound must
	// terminate the recursion.
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{0.25, 0.25, 0.25}
	}
	tree, err := BuildTree(pts, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 6 {
		t.Errorf("depth %d exceeds max level 6", tree.Depth())
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	pts := GeneratePoints(Plummer, 1234, 7)
	tree, err := BuildTree(pts, 25, 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(pts))
	for i, orig := range tree.SrcPerm {
		if seen[orig] {
			t.Fatalf("Perm maps two positions to original %d", orig)
		}
		seen[orig] = true
		if tree.Src[i] != pts[orig] {
			t.Fatalf("Points[%d] != original[%d]", i, orig)
		}
	}
}

func TestOctantRoundTrip(t *testing.T) {
	// Property: a child's center is in the octant it was created for.
	f := func(seed int64) bool {
		c := Point{0.5, 0.5, 0.5}
		h := 0.5
		for o := 0; o < 8; o++ {
			cc := octantCenter(c, h, o)
			if octantOf(cc, c) != o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1}); err != nil {
		t.Error(err)
	}
}

func TestAdjacency(t *testing.T) {
	a := &Node{Center: Point{0.5, 0.5, 0.5}, Half: 0.5}
	cases := []struct {
		b    Node
		want bool
	}{
		{Node{Center: Point{1.5, 0.5, 0.5}, Half: 0.5}, true},   // face
		{Node{Center: Point{1.5, 1.5, 1.5}, Half: 0.5}, true},   // corner
		{Node{Center: Point{2.5, 0.5, 0.5}, Half: 0.5}, false},  // gap
		{Node{Center: Point{0.5, 0.5, 0.5}, Half: 0.5}, true},   // self
		{Node{Center: Point{1.25, 0.5, 0.5}, Half: 0.25}, true}, // smaller, touching
		{Node{Center: Point{1.75, 0.5, 0.5}, Half: 0.25}, false},
	}
	for i, c := range cases {
		if got := adjacent(a, &c.b); got != c.want {
			t.Errorf("case %d: adjacent = %v, want %v", i, got, c.want)
		}
	}
}

func TestUniformTreeIsComplete(t *testing.T) {
	// A uniform distribution with N/Q a power of 8 should give a nearly
	// complete tree: all leaves at the same level.
	pts := GeneratePoints(Uniform, 8192, 3)
	tree, err := BuildTree(pts, 1024, 20)
	if err != nil {
		t.Fatal(err)
	}
	minLvl, maxLvl := 99, 0
	for _, li := range tree.Leaves() {
		l := tree.Nodes[li].Level
		if l < minLvl {
			minLvl = l
		}
		if l > maxLvl {
			maxLvl = l
		}
	}
	if maxLvl-minLvl > 1 {
		t.Errorf("uniform tree leaf levels span [%d, %d]; expected near-complete", minLvl, maxLvl)
	}
}

func TestGeneratePointsInUnitCube(t *testing.T) {
	for _, d := range []Distribution{Uniform, Plummer, SphereSurface} {
		for _, p := range GeneratePoints(d, 2000, 11) {
			if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
				t.Fatalf("%v: point %v outside unit cube", d, p)
			}
		}
	}
}

func TestGeneratePointsDeterministic(t *testing.T) {
	a := GeneratePoints(Plummer, 100, 5)
	b := GeneratePoints(Plummer, 100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("point generation not deterministic")
		}
	}
	c := GeneratePoints(Plummer, 100, 6)
	if a[0] == c[0] {
		t.Error("different seeds produced identical first point")
	}
}

func TestSurfaceGridCount(t *testing.T) {
	for _, p := range []int{2, 3, 4, 6, 8} {
		g := SurfaceGrid(p)
		if len(g) != SurfaceCount(p) {
			t.Errorf("p=%d: grid has %d points, SurfaceCount says %d", p, len(g), SurfaceCount(p))
		}
		// All points on the boundary of [-1,1]³.
		for _, u := range g {
			if math.Abs(u.MaxAbs()-1) > 1e-12 {
				t.Fatalf("p=%d: point %v not on cube surface", p, u)
			}
		}
	}
	if SurfaceCount(4) != 56 || SurfaceCount(6) != 152 {
		t.Error("surface counts do not match 6(p-1)²+2 formula values")
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 5, 6}
	if p.Add(q) != (Point{5, 7, 9}) || q.Sub(p) != (Point{3, 3, 3}) {
		t.Error("Add/Sub wrong")
	}
	if p.Scale(2) != (Point{2, 4, 6}) {
		t.Error("Scale wrong")
	}
	if (Point{-3, 2, 1}).MaxAbs() != 3 {
		t.Error("MaxAbs wrong")
	}
	if math.Abs((Point{3, 4, 0}).Norm()-5) > 1e-15 {
		t.Error("Norm wrong")
	}
}
