package fmm

// BuildLists computes the U, V, W and X interaction lists for every node
// (paper §III-A, Fig. 3):
//
//   - U(B), for leaf B: all leaves adjacent to B, including B itself.
//     These interact by direct evaluation.
//   - V(B): children of B's parent's colleagues that are not adjacent to
//     B — the classic far-field interaction list, handled by M2L.
//   - W(B), for leaf B: descendants A of B's colleagues with A not
//     adjacent to B but A's parent adjacent to B. A's upward equivalent
//     densities are evaluated directly at B's targets.
//   - X(B): all A with B ∈ W(A). A's source points are evaluated directly
//     onto B's downward check surface.
//
// Every list has bounded length, which is what gives the FMM its O(N)
// complexity.
func (t *Tree) BuildLists() {
	colleagues := t.buildColleagues()

	for i := range t.Nodes {
		n := &t.Nodes[i]

		// V list: children of parent's colleagues not adjacent to n.
		if n.Parent != nilNode {
			for _, pc := range colleagues[n.Parent] {
				for _, c := range t.Nodes[pc].Children {
					if c == nilNode || c == i {
						continue
					}
					if !adjacent(&t.Nodes[c], n) {
						n.V = append(n.V, int32(c))
					}
				}
			}
		}

		if !n.Leaf {
			continue
		}

		// U list: adjacent leaves of any level, found by descending from
		// the root through adjacent boxes.
		t.collectAdjacentLeaves(t.Root, i, &n.U)

		// W list: starting from colleagues, descend through adjacent
		// internal descendants; the first non-adjacent child met joins W.
		for _, k := range colleagues[i] {
			if int(k) == i {
				continue
			}
			t.collectW(int(k), i, &n.W)
		}
	}

	// X lists invert W: A ∈ X(B) iff B ∈ W(A).
	for i := range t.Nodes {
		if !t.Nodes[i].Leaf {
			continue
		}
		for _, w := range t.Nodes[i].W {
			t.Nodes[w].X = append(t.Nodes[w].X, int32(i))
		}
	}
}

// buildColleagues returns, per node, the same-level adjacent nodes
// (including the node itself). Colleagues are found through the parent's
// colleagues, which bounds the search to 27 candidates per node.
func (t *Tree) buildColleagues() [][]int32 {
	col := make([][]int32, len(t.Nodes))
	// The node slice is in pre-order (parents precede children), so one
	// forward pass suffices.
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Parent == nilNode {
			col[i] = []int32{int32(i)}
			continue
		}
		for _, pc := range col[n.Parent] {
			for _, c := range t.Nodes[pc].Children {
				if c == nilNode {
					continue
				}
				if adjacent(&t.Nodes[c], n) {
					col[i] = append(col[i], int32(c))
				}
			}
		}
	}
	return col
}

// collectAdjacentLeaves descends from node cur adding every leaf adjacent
// to target.
func (t *Tree) collectAdjacentLeaves(cur, target int, out *[]int32) {
	cn := &t.Nodes[cur]
	if !adjacent(cn, &t.Nodes[target]) {
		return
	}
	if cn.Leaf {
		*out = append(*out, int32(cur))
		return
	}
	for _, c := range cn.Children {
		if c != nilNode {
			t.collectAdjacentLeaves(c, target, out)
		}
	}
}

// collectW descends from an adjacent node cur: children that are not
// adjacent to the target leaf join its W list; adjacent internal children
// are descended further (adjacent leaves are already in U).
func (t *Tree) collectW(cur, target int, out *[]int32) {
	cn := &t.Nodes[cur]
	if cn.Leaf {
		return
	}
	for _, c := range cn.Children {
		if c == nilNode {
			continue
		}
		if adjacent(&t.Nodes[c], &t.Nodes[target]) {
			t.collectW(c, target, out)
		} else {
			*out = append(*out, int32(c))
		}
	}
}

// ListStats summarizes interaction-list sizes — useful for verifying the
// boundedness invariants and for workload analysis.
type ListStats struct {
	MaxU, MaxV, MaxW, MaxX int
	TotalU, TotalV         int64
	TotalW, TotalX         int64
}

// Stats computes the list statistics over all nodes.
func (t *Tree) Stats() ListStats {
	var s ListStats
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if len(n.U) > s.MaxU {
			s.MaxU = len(n.U)
		}
		if len(n.V) > s.MaxV {
			s.MaxV = len(n.V)
		}
		if len(n.W) > s.MaxW {
			s.MaxW = len(n.W)
		}
		if len(n.X) > s.MaxX {
			s.MaxX = len(n.X)
		}
		s.TotalU += int64(len(n.U))
		s.TotalV += int64(len(n.V))
		s.TotalW += int64(len(n.W))
		s.TotalX += int64(len(n.X))
	}
	return s
}
