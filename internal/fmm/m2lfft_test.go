package fmm

import (
	"math"
	"math/cmplx"
	"testing"

	"dvfsroofline/internal/fft"
)

func TestLatticeIndexRoundTrip(t *testing.T) {
	for _, p := range []int{2, 4, 6} {
		surf := SurfaceGrid(p)
		seen := map[int]bool{}
		dim := fft.Dim3{Nx: 2 * p, Ny: 2 * p, Nz: 2 * p}
		for _, u := range surf {
			ix, iy, iz := latticeIndex(u, p)
			if ix < 0 || ix >= p || iy < 0 || iy >= p || iz < 0 || iz >= p {
				t.Fatalf("p=%d: lattice index (%d,%d,%d) out of range", p, ix, iy, iz)
			}
			li := dim.Index(ix, iy, iz)
			if seen[li] {
				t.Fatalf("p=%d: two surface points map to lattice cell %d", p, li)
			}
			seen[li] = true
		}
	}
}

func TestKernelHatMatchesDirectConvolution(t *testing.T) {
	// Applying the spectral kernel to a point density must equal the
	// direct kernel sum between the corresponding lattice points of two
	// offset boxes.
	const p = 4
	surf := SurfaceGrid(p)
	plan := newFFTPlan(p, surf)
	h := 0.25
	off := [3]int8{2, -2, 0}
	k := Laplace{}
	ghat := plan.kernelHat(k, off, h)
	dim := plan.dim

	// Source density: a spike at one surface point.
	srcIdx := 7 // arbitrary surface point
	grid := make([]complex128, dim.Len())
	grid[plan.surfIdx[srcIdx]] = 1
	fft.Forward3(grid, dim)
	for i := range grid {
		grid[i] *= ghat[i]
	}
	fft.Inverse3(grid, dim)

	// Direct: target box center offset by 2h*off.
	delta := 2 * h / float64(p-1)
	srcPt := placeSurface(surf, Point{}, h, equivRadius)[srcIdx]
	tc := Point{2 * h * float64(off[0]), 2 * h * float64(off[1]), 2 * h * float64(off[2])}
	dst := placeSurface(surf, tc, h, equivRadius)
	_ = delta
	for ti, tp := range dst {
		want := k.Eval(tp.X-srcPt.X, tp.Y-srcPt.Y, tp.Z-srcPt.Z)
		got := real(grid[plan.surfIdx[ti]])
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("target %d: spectral %v vs direct %v", ti, got, want)
		}
	}
}

func TestKernelHatCached(t *testing.T) {
	plan := newFFTPlan(4, SurfaceGrid(4))
	a := plan.kernelHat(Laplace{}, [3]int8{2, 0, 0}, 0.5)
	b := plan.kernelHat(Laplace{}, [3]int8{2, 0, 0}, 0.5)
	if &a[0] != &b[0] {
		t.Error("kernel grid not cached")
	}
}

func TestKernelHatFiniteEverywhere(t *testing.T) {
	// V-list offsets never bring lattice points into coincidence, so the
	// grids must be finite; and the zero-frequency component equals the
	// sum of kernel samples.
	plan := newFFTPlan(4, SurfaceGrid(4))
	for _, off := range [][3]int8{{2, 0, 0}, {3, 3, 3}, {-2, 1, 0}, {0, 0, 2}} {
		g := plan.kernelHat(Laplace{}, off, 0.125)
		for i, v := range g {
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				t.Fatalf("offset %v: non-finite spectral value at %d", off, i)
			}
		}
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ a, m, want int }{
		{5, 8, 5}, {-1, 8, 7}, {8, 8, 0}, {-8, 8, 0}, {-9, 8, 7},
	}
	for _, c := range cases {
		if got := mod(c.a, c.m); got != c.want {
			t.Errorf("mod(%d,%d) = %d, want %d", c.a, c.m, got, c.want)
		}
	}
}
