package fmm

import (
	"fmt"
	"math"
)

// Gradient (force-field) evaluation. N-body applications usually need
// ∇f(x_i) = Σ_j ∇ₓK(x_i, y_j)·s_j alongside the potentials; the KIFMM
// delivers it for free by differentiating the far-field *representation*:
// local expansions and W-list equivalent densities are smooth kernel sums,
// so their target-gradients are exact kernel-gradient sums over the same
// equivalent points, and the near field differentiates directly.

// GradientKernel is implemented by kernels that can evaluate their
// target-gradient ∇ₓK alongside the value.
type GradientKernel interface {
	Kernel
	// EvalGrad returns K and the components of ∇ₓK for r = x - y. At
	// r = 0 both must be zero (no self-interaction).
	EvalGrad(dx, dy, dz float64) (k, gx, gy, gz float64)
}

// EvalGrad implements GradientKernel for the Laplace kernel:
// ∇ₓ 1/(4π|r|) = -r / (4π|r|³).
func (Laplace) EvalGrad(dx, dy, dz float64) (k, gx, gy, gz float64) {
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0, 0, 0, 0
	}
	r := math.Sqrt(r2)
	k = 1 / (4 * math.Pi * r)
	g := -k / r2
	return k, g * dx, g * dy, g * dz
}

// EvalGrad implements GradientKernel for the Yukawa kernel:
// d/dr e^{-λr}/(4πr) = -(λ + 1/r)·K, directed along r̂.
func (y Yukawa) EvalGrad(dx, dy, dz float64) (k, gx, gy, gz float64) {
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0, 0, 0, 0
	}
	r := math.Sqrt(r2)
	k = math.Exp(-y.Lambda*r) / (4 * math.Pi * r)
	g := -(y.Lambda + 1/r) * k / r
	return k, g * dx, g * dy, g * dz
}

// Gradient is ∇f at one target point.
type Gradient [3]float64

// EvaluateGrad computes both the potentials and their gradients at the
// points (sources == targets), using the kernel-independent FMM. The
// kernel must implement GradientKernel.
func EvaluateGrad(points []Point, densities []float64, opt Options) (*Result, []Gradient, error) {
	opt = opt.withDefaults()
	if len(points) != len(densities) {
		return nil, nil, fmt.Errorf("fmm: %d points but %d densities", len(points), len(densities))
	}
	if _, ok := opt.Kernel.(GradientKernel); !ok {
		return nil, nil, fmt.Errorf("fmm: kernel %s does not implement GradientKernel", opt.Kernel.Name())
	}
	tree, err := BuildTree(points, opt.Q, opt.MaxLevel)
	if err != nil {
		return nil, nil, err
	}
	return evaluateGradOnTree(tree, densities, opt)
}

// EvaluateGradAt is the distinct source/target variant of EvaluateGrad.
func EvaluateGradAt(targets, sources []Point, densities []float64, opt Options) (*Result, []Gradient, error) {
	opt = opt.withDefaults()
	if len(sources) != len(densities) {
		return nil, nil, fmt.Errorf("fmm: %d sources but %d densities", len(sources), len(densities))
	}
	if _, ok := opt.Kernel.(GradientKernel); !ok {
		return nil, nil, fmt.Errorf("fmm: kernel %s does not implement GradientKernel", opt.Kernel.Name())
	}
	tree, err := BuildDualTree(targets, sources, opt.Q, opt.MaxLevel)
	if err != nil {
		return nil, nil, err
	}
	return evaluateGradOnTree(tree, densities, opt)
}

func evaluateGradOnTree(tree *Tree, densities []float64, opt Options) (*Result, []Gradient, error) {
	gk := opt.Kernel.(GradientKernel)

	// Run the shared tree passes once; then evaluate the leaf phases in
	// both potential and gradient form. The gradient of the far field is
	// the kernel-gradient sum over the same smooth representations the
	// potential used: the leaf's downward equivalent densities, each
	// W-list member's upward equivalent densities, and the near field
	// directly.
	e := newEngine(tree, densities, opt)
	e.runTreePasses()
	e.l2pPhase()
	e.wPhase()
	e.uPhase()

	grad := make([]Gradient, len(tree.Trg))
	leaves := tree.Leaves()
	e.parallelNodes(leaves, func(i int) {
		n := &e.t.Nodes[i]
		targets := tree.Trg[n.TrgStart:n.TrgEnd]
		acc := grad[n.TrgStart:n.TrgEnd]
		// L2P gradient: differentiate the local expansion.
		dePts := placeSurface(e.ops.unitSurf, n.Center, n.Half, checkRadius)
		gradSum(gk, targets, acc, dePts, e.dnEquiv[i])
		// W-list gradient.
		for _, w := range n.W {
			a := &e.t.Nodes[w]
			uePts := placeSurface(e.ops.unitSurf, a.Center, a.Half, equivRadius)
			gradSum(gk, targets, acc, uePts, e.upEquiv[w])
		}
		// Near-field gradient.
		for _, u := range n.U {
			a := &e.t.Nodes[u]
			gradSum(gk, targets, acc, tree.Src[a.SrcStart:a.SrcEnd], e.dens[a.SrcStart:a.SrcEnd])
		}
	})

	// Back to the caller's target order.
	out := make([]Gradient, len(tree.Trg))
	for i, orig := range tree.TrgPerm {
		out[orig] = grad[i]
	}
	return e.result(), out, nil
}

// gradSum accumulates Σ_j ∇ₓK(x - y_j)·q_j into each target's gradient.
func gradSum(k GradientKernel, targets []Point, acc []Gradient, sources []Point, q []float64) {
	for i := range targets {
		tx, ty, tz := targets[i].X, targets[i].Y, targets[i].Z
		var gx, gy, gz float64
		for j := range sources {
			_, dx, dy, dz := k.EvalGrad(tx-sources[j].X, ty-sources[j].Y, tz-sources[j].Z)
			gx += dx * q[j]
			gy += dy * q[j]
			gz += dz * q[j]
		}
		acc[i][0] += gx
		acc[i][1] += gy
		acc[i][2] += gz
	}
}

// DirectGradAt evaluates the exact gradients at targets — the O(N·M)
// reference for the FMM gradients.
func DirectGradAt(targets, sources []Point, densities []float64, k GradientKernel) []Gradient {
	if len(sources) != len(densities) {
		panic("fmm: DirectGradAt length mismatch")
	}
	out := make([]Gradient, len(targets))
	gradSum(k, targets, out, sources, densities)
	return out
}
