package fmm

import (
	"fmt"
	"math"
)

// nilNode marks an absent child or parent.
const nilNode = -1

// Node is one box (octant) of the adaptive octree. Nodes are stored in a
// flat slice and referenced by index; children of a split node are
// created in Morton octant order.
type Node struct {
	Center   Point
	Half     float64 // half the box edge length
	Level    int     // root is level 0
	Parent   int     // nilNode for the root
	Children [8]int  // nilNode entries when absent (leaves have all nilNode)
	Octant   int     // this node's octant index within its parent
	Leaf     bool

	// SrcStart/SrcEnd delimit this node's source points in the tree's
	// permuted source array; TrgStart/TrgEnd likewise for targets.
	// Internal nodes cover the union of their children. When the tree is
	// built over a single point set the two ranges coincide.
	SrcStart, SrcEnd int
	TrgStart, TrgEnd int

	// Interaction lists (paper Fig. 3), as node indices. U and W are only
	// populated for leaves; V for every node; X for nodes that appear in
	// some leaf's W list.
	U, V, W, X []int32
}

// NumSources returns the number of source points in the node's subtree.
func (n *Node) NumSources() int { return n.SrcEnd - n.SrcStart }

// NumTargets returns the number of target points in the node's subtree.
func (n *Node) NumTargets() int { return n.TrgEnd - n.TrgStart }

// Tree is an adaptive octree over a source and a target point set (the
// paper's y_j and x_i of Eq. 10; they may be the same set). Points are
// permuted so that each node owns contiguous ranges of both arrays.
type Tree struct {
	Nodes []Node

	Src     []Point // permuted copy of the source points
	SrcPerm []int   // Src[i] == original sources[SrcPerm[i]]
	Trg     []Point // permuted copy of the target points
	TrgPerm []int   // Trg[i] == original targets[TrgPerm[i]]

	// Shared reports whether sources and targets are one set (Trg and
	// TrgPerm alias Src and SrcPerm).
	Shared bool

	Root      int
	MaxLeaf   int // the Q parameter: maximum points per leaf (per side)
	MaxLevel  int
	numLeaves int
	maxDepth  int
}

// Points returns the permuted source array; Perm its permutation. These
// accessors serve the common sources == targets case.
func (t *Tree) Points() []Point { return t.Src }

// Perm returns the source permutation (see Points).
func (t *Tree) Perm() []int { return t.SrcPerm }

// BuildTree constructs an adaptive octree over a single point set acting
// as both sources and targets, splitting any box with more than q points
// (the paper's Q parameter) until maxLevel.
func BuildTree(pts []Point, q, maxLevel int) (*Tree, error) {
	return buildTree(pts, nil, q, maxLevel, true)
}

// BuildDualTree constructs an adaptive octree over distinct source and
// target sets. A box splits while either side holds more than q points.
func BuildDualTree(targets, sources []Point, q, maxLevel int) (*Tree, error) {
	return buildTree(sources, targets, q, maxLevel, false)
}

func buildTree(src, trg []Point, q, maxLevel int, shared bool) (*Tree, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("fmm: no source points")
	}
	if !shared && len(trg) == 0 {
		return nil, fmt.Errorf("fmm: no target points")
	}
	if q < 1 {
		return nil, fmt.Errorf("fmm: invalid leaf capacity Q=%d", q)
	}
	if maxLevel < 0 || maxLevel > 30 {
		return nil, fmt.Errorf("fmm: invalid max level %d", maxLevel)
	}

	// Bounding cube over both sets, slightly padded so boundary points
	// fall strictly inside.
	lo, hi := src[0], src[0]
	expand := func(pts []Point) {
		for _, p := range pts {
			lo.X = math.Min(lo.X, p.X)
			lo.Y = math.Min(lo.Y, p.Y)
			lo.Z = math.Min(lo.Z, p.Z)
			hi.X = math.Max(hi.X, p.X)
			hi.Y = math.Max(hi.Y, p.Y)
			hi.Z = math.Max(hi.Z, p.Z)
		}
	}
	expand(src)
	if !shared {
		expand(trg)
	}
	center := Point{(lo.X + hi.X) / 2, (lo.Y + hi.Y) / 2, (lo.Z + hi.Z) / 2}
	half := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))/2*1.0001 + 1e-12

	t := &Tree{
		Src:      append([]Point(nil), src...),
		SrcPerm:  identity(len(src)),
		Shared:   shared,
		MaxLeaf:  q,
		MaxLevel: maxLevel,
	}
	if shared {
		t.Trg = t.Src
		t.TrgPerm = t.SrcPerm
	} else {
		t.Trg = append([]Point(nil), trg...)
		t.TrgPerm = identity(len(trg))
	}
	t.Root = t.addNode(Node{
		Center: center, Half: half, Level: 0,
		Parent: nilNode, Octant: 0,
		SrcStart: 0, SrcEnd: len(src),
		TrgStart: 0, TrgEnd: len(t.Trg),
	})
	t.split(t.Root)
	return t, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (t *Tree) addNode(n Node) int {
	for i := range n.Children {
		n.Children[i] = nilNode
	}
	t.Nodes = append(t.Nodes, n)
	return len(t.Nodes) - 1
}

// octantOf returns the octant (0..7) of p relative to center c: bit 0 for
// x, bit 1 for y, bit 2 for z.
func octantOf(p, c Point) int {
	o := 0
	if p.X >= c.X {
		o |= 1
	}
	if p.Y >= c.Y {
		o |= 2
	}
	if p.Z >= c.Z {
		o |= 4
	}
	return o
}

// octantCenter returns the center of octant o of a box at c with half
// width h.
func octantCenter(c Point, h float64, o int) Point {
	q := h / 2
	d := Point{-q, -q, -q}
	if o&1 != 0 {
		d.X = q
	}
	if o&2 != 0 {
		d.Y = q
	}
	if o&4 != 0 {
		d.Z = q
	}
	return c.Add(d)
}

// partitionOctants stably partitions pts[start:end] (and the parallel
// perm entries) into the 8 octant buckets around center, returning the
// per-octant offsets and counts.
func partitionOctants(pts []Point, perm []int, start, end int, center Point) (offsets, counts [8]int) {
	for p := start; p < end; p++ {
		counts[octantOf(pts[p], center)]++
	}
	sum := start
	for o := 0; o < 8; o++ {
		offsets[o] = sum
		sum += counts[o]
	}
	permuted := make([]Point, end-start)
	permIdx := make([]int, end-start)
	cursor := offsets
	for p := start; p < end; p++ {
		o := octantOf(pts[p], center)
		permuted[cursor[o]-start] = pts[p]
		permIdx[cursor[o]-start] = perm[p]
		cursor[o]++
	}
	copy(pts[start:end], permuted)
	copy(perm[start:end], permIdx)
	return offsets, counts
}

// split recursively subdivides node i while either side holds more than
// MaxLeaf points and the level budget allows.
func (t *Tree) split(i int) {
	n := &t.Nodes[i]
	if (n.NumSources() <= t.MaxLeaf && n.NumTargets() <= t.MaxLeaf) || n.Level >= t.MaxLevel {
		n.Leaf = true
		t.numLeaves++
		if n.Level > t.maxDepth {
			t.maxDepth = n.Level
		}
		return
	}
	center := n.Center
	srcOff, srcCnt := partitionOctants(t.Src, t.SrcPerm, n.SrcStart, n.SrcEnd, center)
	trgOff, trgCnt := srcOff, srcCnt
	if !t.Shared {
		trgOff, trgCnt = partitionOctants(t.Trg, t.TrgPerm, n.TrgStart, n.TrgEnd, center)
	}

	level := n.Level
	half := n.Half
	for o := 0; o < 8; o++ {
		if srcCnt[o] == 0 && trgCnt[o] == 0 {
			continue
		}
		child := t.addNode(Node{
			Center:   octantCenter(center, half, o),
			Half:     half / 2,
			Level:    level + 1,
			Parent:   i,
			Octant:   o,
			SrcStart: srcOff[o], SrcEnd: srcOff[o] + srcCnt[o],
			TrgStart: trgOff[o], TrgEnd: trgOff[o] + trgCnt[o],
		})
		// n may have been invalidated by append; re-take via index.
		t.Nodes[i].Children[o] = child
		t.split(child)
	}
}

// NumLeaves returns the number of leaf boxes.
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Depth returns the deepest leaf level.
func (t *Tree) Depth() int { return t.maxDepth }

// Leaves returns the indices of all leaf nodes in construction order.
func (t *Tree) Leaves() []int {
	out := make([]int, 0, t.numLeaves)
	for i := range t.Nodes {
		if t.Nodes[i].Leaf {
			out = append(out, i)
		}
	}
	return out
}

// adjacent reports whether boxes a and b share at least a boundary point.
// With dyadic box coordinates an exact tolerance-free comparison would be
// fragile under floating point, so a relative epsilon is used.
func adjacent(a, b *Node) bool {
	gap := a.Center.Sub(b.Center).MaxAbs() - (a.Half + b.Half)
	return gap <= 1e-9*(a.Half+b.Half)
}

// Validate checks the structural invariants of the tree. It is exercised
// by tests and usable as a debugging aid.
func (t *Tree) Validate() error {
	if err := t.validateSide("source", t.Src,
		func(n *Node) (int, int) { return n.SrcStart, n.SrcEnd }); err != nil {
		return err
	}
	return t.validateSide("target", t.Trg,
		func(n *Node) (int, int) { return n.TrgStart, n.TrgEnd })
}

func (t *Tree) validateSide(side string, pts []Point, rng func(*Node) (int, int)) error {
	seen := make([]bool, len(pts))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		start, end := rng(n)
		if start < 0 || end > len(pts) || start > end {
			return fmt.Errorf("fmm: node %d has bad %s range [%d,%d)", i, side, start, end)
		}
		if n.Leaf {
			if n.Level < t.MaxLevel && end-start > t.MaxLeaf {
				return fmt.Errorf("fmm: leaf %d has %d %s points > Q=%d", i, end-start, side, t.MaxLeaf)
			}
			for p := start; p < end; p++ {
				if seen[p] {
					return fmt.Errorf("fmm: %s point %d in two leaves", side, p)
				}
				seen[p] = true
			}
		}
		// Every point must lie inside its node's box.
		for p := start; p < end; p++ {
			if pts[p].Sub(n.Center).MaxAbs() > n.Half*(1+1e-9) {
				return fmt.Errorf("fmm: %s point %d outside node %d", side, p, i)
			}
		}
		// Children partition the parent's range.
		if !n.Leaf {
			covered := 0
			for _, c := range n.Children {
				if c == nilNode {
					continue
				}
				cn := &t.Nodes[c]
				if cn.Parent != i || cn.Level != n.Level+1 {
					return fmt.Errorf("fmm: child %d of node %d has bad linkage", c, i)
				}
				cs, ce := rng(cn)
				covered += ce - cs
			}
			if covered != end-start {
				return fmt.Errorf("fmm: node %d children cover %d of %d %s points", i, covered, end-start, side)
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("fmm: %s point %d not owned by any leaf", side, p)
		}
	}
	return nil
}
