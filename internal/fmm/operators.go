package fmm

import (
	"sync"

	"dvfsroofline/internal/linalg"
)

// rcond is the relative singular-value cutoff used when pseudo-inverting
// the (mildly ill-conditioned) equivalent-to-check operators. The value
// trades approximation accuracy against noise amplification; 1e-9 is the
// standard KIFMM choice for double precision.
const rcond = 1e-9

// levelOps holds the translation operators for one tree level (box half
// width h = rootHalf / 2^level). Operators depend only on the level for a
// fixed kernel, so they are computed once and shared across the level's
// nodes. Nothing here assumes a homogeneous kernel — operators are built
// per level, which is what keeps the method kernel-independent.
type levelOps struct {
	uc2ue *linalg.Matrix    // pinv: upward check potential -> upward equivalent density
	dc2de *linalg.Matrix    // pinv: downward check potential -> downward equivalent density
	m2m   [8]*linalg.Matrix // child octant equivalent -> parent upward check
	l2l   [8]*linalg.Matrix // parent downward equivalent -> child downward check

	m2l   map[[3]int8]*linalg.Matrix // V-list offset -> (source UE -> target DC)
	m2lMu sync.Mutex
}

// operatorSet builds and caches levelOps per level for one kernel and
// root geometry.
type operatorSet struct {
	kernel   Kernel
	unitSurf []Point // unit cube-surface grid
	rootHalf float64

	mu     sync.Mutex
	levels map[int]*levelOps

	// evalCount tallies kernel evaluations spent building operators; the
	// paper's GPU implementation precomputes these on the host, so they
	// are reported separately from the device phases.
	evalCount int64
}

func newOperatorSet(k Kernel, surfaceOrder int, rootHalf float64) *operatorSet {
	return &operatorSet{
		kernel:   k,
		unitSurf: SurfaceGrid(surfaceOrder),
		rootHalf: rootHalf,
		levels:   make(map[int]*levelOps),
	}
}

func (o *operatorSet) halfAt(level int) float64 {
	h := o.rootHalf
	for i := 0; i < level; i++ {
		h /= 2
	}
	return h
}

// kernelMatrix evaluates K(target_i, source_j) into a dense matrix.
func (o *operatorSet) kernelMatrix(targets, sources []Point) *linalg.Matrix {
	m := linalg.NewMatrix(len(targets), len(sources))
	for i, t := range targets {
		row := m.Row(i)
		for j, s := range sources {
			row[j] = o.kernel.Eval(t.X-s.X, t.Y-s.Y, t.Z-s.Z)
		}
	}
	o.evalCount += int64(len(targets) * len(sources))
	return m
}

// at returns the operators for a level, building them on first use.
func (o *operatorSet) at(level int) *levelOps {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ops, ok := o.levels[level]; ok {
		return ops
	}
	h := o.halfAt(level)
	origin := Point{}

	ue := placeSurface(o.unitSurf, origin, h, equivRadius)
	uc := placeSurface(o.unitSurf, origin, h, checkRadius)
	dc := placeSurface(o.unitSurf, origin, h, equivRadius)
	de := placeSurface(o.unitSurf, origin, h, checkRadius)

	ops := &levelOps{
		uc2ue: linalg.PseudoInverse(o.kernelMatrix(uc, ue), rcond),
		dc2de: linalg.PseudoInverse(o.kernelMatrix(dc, de), rcond),
		m2l:   make(map[[3]int8]*linalg.Matrix),
	}

	// M2M: child (level+1) equivalent surface -> this level's upward
	// check surface, per octant. L2L: this level's downward equivalent ->
	// child downward check.
	ch := h / 2
	for oct := 0; oct < 8; oct++ {
		cc := octantCenter(origin, h, oct)
		childUE := placeSurface(o.unitSurf, cc, ch, equivRadius)
		childDC := placeSurface(o.unitSurf, cc, ch, equivRadius)
		ops.m2m[oct] = o.kernelMatrix(uc, childUE)
		ops.l2l[oct] = o.kernelMatrix(childDC, de)
	}

	o.levels[level] = ops
	return ops
}

// m2lFor returns the dense M2L operator for a same-level V-list offset
// (in units of the box edge 2h): source upward-equivalent densities to
// target downward-check potentials. Operators are cached per offset.
func (o *operatorSet) m2lFor(level int, off [3]int8) *linalg.Matrix {
	ops := o.at(level)
	ops.m2lMu.Lock()
	if m, ok := ops.m2l[off]; ok {
		ops.m2lMu.Unlock()
		return m
	}
	ops.m2lMu.Unlock()

	h := o.halfAt(level)
	src := placeSurface(o.unitSurf, Point{}, h, equivRadius)
	tc := Point{2 * h * float64(off[0]), 2 * h * float64(off[1]), 2 * h * float64(off[2])}
	dst := placeSurface(o.unitSurf, tc, h, equivRadius)
	m := o.kernelMatrix(dst, src)

	ops.m2lMu.Lock()
	// Another goroutine may have built it concurrently; keep the first.
	if exist, ok := ops.m2l[off]; ok {
		m = exist
	} else {
		ops.m2l[off] = m
	}
	ops.m2lMu.Unlock()
	return m
}

// vOffset computes the integer offset (in box edges) from source node s
// to target node t at the same level; used to key M2L operators.
func vOffset(t, s *Node) [3]int8 {
	edge := 2 * t.Half
	d := t.Center.Sub(s.Center)
	return [3]int8{
		int8(roundInt(d.X / edge)),
		int8(roundInt(d.Y / edge)),
		int8(roundInt(d.Z / edge)),
	}
}

func roundInt(x float64) int {
	if x >= 0 {
		return int(x + 0.5)
	}
	return -int(-x + 0.5)
}
