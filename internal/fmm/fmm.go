package fmm

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dvfsroofline/internal/counters"
)

// Options configures an FMM evaluation.
type Options struct {
	// Q is the maximum number of points per leaf box (the paper's tuning
	// parameter: large Q shifts work into the compute-bound U phase,
	// small Q into the bandwidth-bound V phase). Default 128.
	Q int
	// SurfaceOrder is the number of equivalent-surface points per cube
	// edge; accuracy grows with it. Default 4 (56 surface points).
	SurfaceOrder int
	// UseFFTM2L selects the FFT-accelerated V-list translation, the
	// variant the paper's GPU implementation uses. Dense M2L is the
	// default (it is faster at the default surface order).
	UseFFTM2L bool
	// UseBatchedM2L groups dense V-list translations by offset and
	// applies each operator as one matrix-matrix product — the layout
	// production KIFMM codes use. Ignored when UseFFTM2L is set.
	UseBatchedM2L bool
	// MaxLevel bounds tree depth. Default 20.
	MaxLevel int
	// Workers bounds evaluation parallelism. Default GOMAXPROCS.
	Workers int
	// Kernel is the interaction kernel. Default Laplace.
	Kernel Kernel
}

func (o Options) withDefaults() Options {
	if o.Q == 0 {
		o.Q = 128
	}
	if o.SurfaceOrder == 0 {
		o.SurfaceOrder = 4
	}
	if o.MaxLevel == 0 {
		o.MaxLevel = 20
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Kernel == nil {
		o.Kernel = Laplace{}
	}
	return o
}

// Result holds the outcome of an FMM evaluation.
type Result struct {
	// Potentials[i] is the potential at input point i (original order).
	Potentials []float64
	// Tree is the octree used for the evaluation.
	Tree *Tree
	// Profiles hold the per-phase operation profiles — the performance-
	// counter view of the run that feeds the energy model.
	Profiles PhaseProfiles
	// SetupEvals counts kernel evaluations spent precomputing operators
	// (done on the host in the paper's implementation, hence kept out of
	// the device phases).
	SetupEvals int64
	// Options echoes the effective (defaulted) options.
	Options Options
}

// Evaluate computes the N-body potentials f(x_i) = Σ_j K(x_i, y_j)·s_j
// (paper Eq. 10) for sources == targets == points, using the kernel-
// independent FMM.
func Evaluate(points []Point, densities []float64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(points) != len(densities) {
		return nil, fmt.Errorf("fmm: %d points but %d densities", len(points), len(densities))
	}
	tree, err := BuildTree(points, opt.Q, opt.MaxLevel)
	if err != nil {
		return nil, err
	}
	return evaluateOnTree(tree, densities, opt)
}

// EvaluateAt computes the potentials at distinct target points x_i due to
// distinct source points y_j with densities s_j — the general form of the
// paper's Eq. 10.
func EvaluateAt(targets, sources []Point, densities []float64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(sources) != len(densities) {
		return nil, fmt.Errorf("fmm: %d sources but %d densities", len(sources), len(densities))
	}
	tree, err := BuildDualTree(targets, sources, opt.Q, opt.MaxLevel)
	if err != nil {
		return nil, err
	}
	return evaluateOnTree(tree, densities, opt)
}

// newEngine prepares an engine over a listed tree with permuted
// densities and warmed operators.
func newEngine(tree *Tree, densities []float64, opt Options) *engine {
	tree.BuildLists()
	e := &engine{
		t:    tree,
		opt:  opt,
		ops:  newOperatorSet(opt.Kernel, opt.SurfaceOrder, tree.Nodes[tree.Root].Half),
		dens: make([]float64, len(tree.Src)),
		pot:  make([]float64, len(tree.Trg)),
	}
	for i, orig := range tree.SrcPerm {
		e.dens[i] = densities[orig]
	}
	nsurf := SurfaceCount(opt.SurfaceOrder)
	e.upEquiv = makeVecs(len(tree.Nodes), nsurf)
	e.dnCheck = makeVecs(len(tree.Nodes), nsurf)
	e.dnEquiv = makeVecs(len(tree.Nodes), nsurf)
	e.byLevel = groupByLevel(tree)

	// Warm the operator cache level by level before the parallel phases,
	// so SetupEvals is deterministic and contention-free.
	for lvl := range e.byLevel {
		e.ops.at(lvl)
	}
	return e
}

// runTreePasses executes the four tree phases (UP, V, X, DOWN), leaving
// every node's upward and downward equivalent densities populated.
func (e *engine) runTreePasses() {
	e.upward()
	switch {
	case e.opt.UseFFTM2L:
		e.vPhaseFFT()
	case e.opt.UseBatchedM2L:
		e.vPhaseDenseBatched()
	default:
		e.vPhaseDense()
	}
	e.xPhase()
	e.downward()
}

// result packages the engine's potentials and counted profiles.
func (e *engine) result() *Result {
	tree := e.t
	out := make([]float64, len(tree.Trg))
	for i, orig := range tree.TrgPerm {
		out[orig] = e.pot[i]
	}
	nsurf := SurfaceCount(e.opt.SurfaceOrder)
	tallies := countPhases(tree, nsurf, e.opt.UseFFTM2L, e.opt.SurfaceOrder)
	var profiles PhaseProfiles
	for ph := Phase(0); ph < NumPhases; ph++ {
		profiles[ph] = tallies[ph].Profile()
	}
	return &Result{
		Potentials: out,
		Tree:       tree,
		Profiles:   profiles,
		SetupEvals: e.ops.evalCount,
		Options:    e.opt,
	}
}

func evaluateOnTree(tree *Tree, densities []float64, opt Options) (*Result, error) {
	e := newEngine(tree, densities, opt)
	e.runTreePasses()
	e.l2pPhase()
	e.wPhase()
	e.uPhase()
	return e.result(), nil
}

// Workload converts a phase profile into a device workload with the
// phase's characteristic occupancy.
func (r *Result) Workload(ph Phase) counters.Profile { return r.Profiles[ph] }

type engine struct {
	t    *Tree
	opt  Options
	ops  *operatorSet
	dens []float64 // densities, permuted order
	pot  []float64 // potentials, permuted order

	upEquiv [][]float64
	dnCheck [][]float64
	dnEquiv [][]float64
	byLevel [][]int // node indices grouped by level, index = level
}

func makeVecs(n, m int) [][]float64 {
	flat := make([]float64, n*m)
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*m : (i+1)*m]
	}
	return out
}

func groupByLevel(t *Tree) [][]int {
	depth := 0
	for i := range t.Nodes {
		if t.Nodes[i].Level > depth {
			depth = t.Nodes[i].Level
		}
	}
	out := make([][]int, depth+1)
	for i := range t.Nodes {
		lvl := t.Nodes[i].Level
		out[lvl] = append(out[lvl], i)
	}
	return out
}

// parallelNodes runs fn over the given node indices with bounded
// parallelism. All phases are structured so that fn writes only state
// owned by its node, making this race-free.
func (e *engine) parallelNodes(nodes []int, fn func(i int)) {
	workers := e.opt.Workers
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for _, i := range nodes {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, len(nodes))
	for _, i := range nodes {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//energylint:allow hotalloc(one closure per worker, not per node; workers is capped by Options)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// evalSum adds Σ_j K(x - y_j)·q_j to each accumulator for targets x.
func evalSum(k Kernel, targets []Point, acc []float64, sources []Point, q []float64) {
	if _, ok := k.(Laplace); ok {
		laplaceSum(targets, acc, sources, q)
		return
	}
	for i, t := range targets {
		var s float64
		for j, y := range sources {
			s += k.Eval(t.X-y.X, t.Y-y.Y, t.Z-y.Z) * q[j]
		}
		acc[i] += s
	}
}

// laplaceSum is the concrete fast path for the Laplace kernel (avoids
// interface dispatch in the innermost loop, mirroring the hand-tuned
// inner kernels of the paper's CUDA implementation).
func laplaceSum(targets []Point, acc []float64, sources []Point, q []float64) {
	const inv4pi = 1.0 / (4 * 3.141592653589793)
	for i := range targets {
		tx, ty, tz := targets[i].X, targets[i].Y, targets[i].Z
		var s float64
		for j := range sources {
			dx := tx - sources[j].X
			dy := ty - sources[j].Y
			dz := tz - sources[j].Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 > 0 {
				s += q[j] / math.Sqrt(r2)
			}
		}
		acc[i] += s * inv4pi
	}
}

// upward runs the UP phase: P2M at leaves, then M2M level by level
// toward the root.
func (e *engine) upward() {
	nsurf := len(e.ops.unitSurf)
	check := e.ops
	for lvl := len(e.byLevel) - 1; lvl >= 0; lvl-- {
		ops := check.at(lvl)
		e.parallelNodes(e.byLevel[lvl], func(i int) {
			n := &e.t.Nodes[i]
			chk := make([]float64, nsurf)
			if n.Leaf {
				ucPts := placeSurface(e.ops.unitSurf, n.Center, n.Half, checkRadius)
				evalSum(e.opt.Kernel, ucPts, chk, e.t.Src[n.SrcStart:n.SrcEnd], e.dens[n.SrcStart:n.SrcEnd])
			} else {
				tmp := make([]float64, nsurf)
				for _, c := range n.Children {
					if c == nilNode {
						continue
					}
					ops.m2m[e.t.Nodes[c].Octant].MulVecTo(tmp, e.upEquiv[c])
					for k := range chk {
						chk[k] += tmp[k]
					}
				}
			}
			ops.uc2ue.MulVecTo(e.upEquiv[i], chk)
		})
	}
}

// vPhaseDense applies dense M2L operators pair by pair.
//
//energylint:hotpath
func (e *engine) vPhaseDense() {
	nsurf := len(e.ops.unitSurf)
	// Pre-build the needed M2L operators sequentially (deterministic
	// eval counting), then apply in parallel.
	for i := range e.t.Nodes {
		n := &e.t.Nodes[i]
		for _, v := range n.V {
			e.ops.m2lFor(n.Level, vOffset(n, &e.t.Nodes[v]))
		}
	}
	all := make([]int, 0, len(e.t.Nodes))
	for i := range e.t.Nodes {
		if len(e.t.Nodes[i].V) > 0 {
			all = append(all, i)
		}
	}
	e.parallelNodes(all, func(i int) {
		n := &e.t.Nodes[i]
		tmp := make([]float64, nsurf)
		for _, v := range n.V {
			m := e.ops.m2lFor(n.Level, vOffset(n, &e.t.Nodes[v]))
			m.MulVecTo(tmp, e.upEquiv[v])
			dst := e.dnCheck[i]
			for k := range dst {
				dst[k] += tmp[k]
			}
		}
	})
}

// xPhase evaluates X-list source points directly onto downward check
// surfaces.
func (e *engine) xPhase() {
	var nodes []int
	for i := range e.t.Nodes {
		if len(e.t.Nodes[i].X) > 0 {
			nodes = append(nodes, i)
		}
	}
	e.parallelNodes(nodes, func(i int) {
		n := &e.t.Nodes[i]
		dcPts := placeSurface(e.ops.unitSurf, n.Center, n.Half, equivRadius)
		for _, x := range n.X {
			a := &e.t.Nodes[x]
			evalSum(e.opt.Kernel, dcPts, e.dnCheck[i], e.t.Src[a.SrcStart:a.SrcEnd], e.dens[a.SrcStart:a.SrcEnd])
		}
	})
}

// downward runs the DOWN tree pass: convert check to equivalent
// densities and push to children (L2L), level by level.
func (e *engine) downward() {
	nsurf := len(e.ops.unitSurf)
	for lvl := 0; lvl < len(e.byLevel); lvl++ {
		ops := e.ops.at(lvl)
		e.parallelNodes(e.byLevel[lvl], func(i int) {
			n := &e.t.Nodes[i]
			// Parent contribution (L2L) arrives via the parent's
			// equivalent density, already computed on the previous level.
			if n.Parent != nilNode {
				tmp := make([]float64, nsurf)
				parentOps := e.ops.at(n.Level - 1)
				parentOps.l2l[n.Octant].MulVecTo(tmp, e.dnEquiv[n.Parent])
				dst := e.dnCheck[i]
				for k := range dst {
					dst[k] += tmp[k]
				}
			}
			ops.dc2de.MulVecTo(e.dnEquiv[i], e.dnCheck[i])
		})
	}
}

// l2pPhase evaluates each leaf's local expansion (downward equivalent
// densities) at its target points. Together with downward it forms the
// paper's DOWN phase.
func (e *engine) l2pPhase() {
	leaves := e.t.Leaves()
	e.parallelNodes(leaves, func(i int) {
		n := &e.t.Nodes[i]
		dePts := placeSurface(e.ops.unitSurf, n.Center, n.Half, checkRadius)
		evalSum(e.opt.Kernel, e.t.Trg[n.TrgStart:n.TrgEnd], e.pot[n.TrgStart:n.TrgEnd], dePts, e.dnEquiv[i])
	})
}

// wPhase evaluates W-list upward equivalent densities at leaf targets.
func (e *engine) wPhase() {
	leaves := e.t.Leaves()
	e.parallelNodes(leaves, func(i int) {
		n := &e.t.Nodes[i]
		for _, w := range n.W {
			a := &e.t.Nodes[w]
			uePts := placeSurface(e.ops.unitSurf, a.Center, a.Half, equivRadius)
			evalSum(e.opt.Kernel, e.t.Trg[n.TrgStart:n.TrgEnd], e.pot[n.TrgStart:n.TrgEnd], uePts, e.upEquiv[w])
		}
	})
}

// uPhase computes the near-field directly, leaf against adjacent leaves.
func (e *engine) uPhase() {
	leaves := e.t.Leaves()
	e.parallelNodes(leaves, func(i int) {
		n := &e.t.Nodes[i]
		targets := e.t.Trg[n.TrgStart:n.TrgEnd]
		acc := e.pot[n.TrgStart:n.TrgEnd]
		for _, u := range n.U {
			a := &e.t.Nodes[u]
			evalSum(e.opt.Kernel, targets, acc, e.t.Src[a.SrcStart:a.SrcEnd], e.dens[a.SrcStart:a.SrcEnd])
		}
	})
}
