package fmm

import (
	"math"
	"testing"
)

// Tests for the distinct source/target evaluation path (the general form
// of the paper's Eq. 10, with targets x_i and sources y_j).

func TestEvaluateAtMatchesDirect(t *testing.T) {
	sources := GeneratePoints(Plummer, 2500, 21)
	targets := GeneratePoints(SphereSurface, 1800, 22)
	dens := GenerateDensities(2500, 23)

	res, err := EvaluateAt(targets, sources, dens, Options{Q: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Potentials) != len(targets) {
		t.Fatalf("got %d potentials for %d targets", len(res.Potentials), len(targets))
	}
	exact := DirectSumAt(targets, sources, dens, nil, 0)
	if e := RelErrL2(res.Potentials, exact); e > 2e-3 {
		t.Errorf("dual-set FMM error %.2e vs direct", e)
	}
}

func TestEvaluateAtDisjointRegions(t *testing.T) {
	// Sources clustered in one corner, targets in the opposite corner:
	// interactions are all far-field (V/W dominated), a stress test for
	// the translation operators.
	sources := GeneratePoints(Uniform, 1500, 31)
	targets := GeneratePoints(Uniform, 1500, 32)
	for i := range sources {
		sources[i] = sources[i].Scale(0.3) // [0, 0.3)³
	}
	for i := range targets {
		targets[i] = targets[i].Scale(0.3).Add(Point{0.7, 0.7, 0.7}) // [0.7, 1)³
	}
	dens := GenerateDensities(1500, 33)
	res, err := EvaluateAt(targets, sources, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSumAt(targets, sources, dens, nil, 0)
	if e := RelErrL2(res.Potentials, exact); e > 2e-3 {
		t.Errorf("disjoint-region FMM error %.2e vs direct", e)
	}
}

func TestEvaluateAtFewTargets(t *testing.T) {
	// Many sources, a handful of probe targets — the typical "field
	// evaluation" use.
	sources := GeneratePoints(Uniform, 4000, 41)
	dens := GenerateDensities(4000, 42)
	targets := []Point{
		{0.5, 0.5, 0.5}, {0.1, 0.9, 0.3}, {0.99, 0.01, 0.5},
	}
	res, err := EvaluateAt(targets, sources, dens, Options{Q: 64})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSumAt(targets, sources, dens, nil, 1)
	for i := range targets {
		rel := math.Abs(res.Potentials[i]-exact[i]) / math.Abs(exact[i])
		if rel > 5e-3 {
			t.Errorf("probe %d: FMM %v vs exact %v (rel %.2e)", i, res.Potentials[i], exact[i], rel)
		}
	}
}

func TestEvaluateAtSharedEqualsEvaluate(t *testing.T) {
	// Passing the same set as sources and targets must agree with the
	// single-set entry point (the trees differ only in bookkeeping).
	pts := GeneratePoints(Plummer, 2000, 51)
	dens := GenerateDensities(2000, 52)
	a, err := Evaluate(pts, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateAt(pts, pts, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	if d := RelErrL2(b.Potentials, a.Potentials); d > 1e-12 {
		t.Errorf("shared-set EvaluateAt differs from Evaluate by %.2e", d)
	}
}

func TestDualTreeValidates(t *testing.T) {
	sources := GeneratePoints(Plummer, 3000, 61)
	targets := GeneratePoints(Uniform, 2000, 62)
	tree, err := BuildDualTree(targets, sources, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
	if tree.Shared {
		t.Error("dual tree marked shared")
	}
	// Source and target counts at the root must cover both sets.
	root := &tree.Nodes[tree.Root]
	if root.NumSources() != 3000 || root.NumTargets() != 2000 {
		t.Errorf("root covers %d sources and %d targets", root.NumSources(), root.NumTargets())
	}
}

func TestDualTreeErrors(t *testing.T) {
	pts := GeneratePoints(Uniform, 10, 1)
	if _, err := BuildDualTree(nil, pts, 10, 20); err == nil {
		t.Error("empty targets accepted")
	}
	if _, err := BuildDualTree(pts, nil, 10, 20); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := EvaluateAt(pts, pts, make([]float64, 3), Options{}); err == nil {
		t.Error("density length mismatch accepted")
	}
}

func TestSharedTreeAliasesArrays(t *testing.T) {
	pts := GeneratePoints(Uniform, 500, 71)
	tree, err := BuildTree(pts, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Shared {
		t.Fatal("single-set tree not marked shared")
	}
	// Trg must alias Src (no duplicated storage) and ranges must agree.
	if &tree.Trg[0] != &tree.Src[0] {
		t.Error("shared tree duplicates point storage")
	}
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if n.SrcStart != n.TrgStart || n.SrcEnd != n.TrgEnd {
			t.Fatalf("node %d: shared ranges diverge", i)
		}
	}
}

func TestEvaluateAtProfileUsesBothSides(t *testing.T) {
	// With 10x more sources than targets, U-phase evals must scale with
	// ntrg*nsrc, not nsrc².
	sources := GeneratePoints(Uniform, 5000, 81)
	targets := GeneratePoints(Uniform, 500, 82)
	dens := GenerateDensities(5000, 83)
	res, err := EvaluateAt(targets, sources, dens, Options{Q: 100})
	if err != nil {
		t.Fatal(err)
	}
	uInstr := res.Profiles[PhaseU].Instructions()
	// A shared-set run over the sources alone has far more U work.
	resShared, err := Evaluate(sources, dens, Options{Q: 100})
	if err != nil {
		t.Fatal(err)
	}
	if uInstr >= resShared.Profiles[PhaseU].Instructions() {
		t.Error("U-phase work did not shrink with the smaller target set")
	}
}
