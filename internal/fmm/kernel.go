package fmm

import "math"

// Kernel is the interaction kernel K(x, y) of the n-body sum (paper
// Eq. 10). The kernel-independent FMM requires only the ability to
// evaluate it — no analytic expansions — which is exactly the property
// this interface captures.
type Kernel interface {
	// Eval returns K(x, y) for r = x - y. Implementations must return a
	// finite value for r = 0 (conventionally zero) so that self-
	// interactions vanish.
	Eval(dx, dy, dz float64) float64
	// Name identifies the kernel in reports.
	Name() string
}

// Laplace is the single-layer Laplace kernel K(x,y) = 1/(4π·|x-y|),
// modeling electrostatic or gravitational interactions — the paper's
// example kernel.
type Laplace struct{}

// Eval implements Kernel.
func (Laplace) Eval(dx, dy, dz float64) float64 {
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	return 1 / (4 * math.Pi * math.Sqrt(r2))
}

// Name implements Kernel.
func (Laplace) Name() string { return "laplace3d" }

// Yukawa is the screened-Coulomb kernel K(x,y) = e^(-λr)/(4πr). It
// exercises the "kernel-independent" property: the same FMM machinery
// works for it without any code change beyond this Eval.
type Yukawa struct {
	// Lambda is the screening parameter λ ≥ 0 (λ = 0 recovers Laplace).
	Lambda float64
}

// Eval implements Kernel.
func (k Yukawa) Eval(dx, dy, dz float64) float64 {
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	r := math.Sqrt(r2)
	return math.Exp(-k.Lambda*r) / (4 * math.Pi * r)
}

// Name implements Kernel.
func (k Yukawa) Name() string { return "yukawa3d" }

// Per-evaluation instruction costs attributed to one kernel evaluation
// plus the accumulation of its contribution, matching how the paper's
// CUDA implementation compiles: difference (3 adds), squared norm
// (1 mul + 2 FMA), reciprocal square root with a Newton step and the
// density multiply (4 mul), and the accumulate (1 FMA); plus the index
// arithmetic, loop and predicate overhead of GPU inner loops
// (~16 integer instructions — this is what makes integers ≈60% of all
// instructions in the paper's Figure 4).
const (
	evalDPFMA = 3
	evalDPMul = 5
	evalDPAdd = 3
	evalInt   = 16
)

// Gaussian is the kernel K(x,y) = exp(-|x-y|²/(2σ²)) — smooth,
// non-singular and non-homogeneous, so it exercises the per-level
// operator construction and the claim that the machinery needs only
// kernel evaluations.
type Gaussian struct {
	// Sigma is the length scale σ > 0.
	Sigma float64
}

// Eval implements Kernel. Unlike the singular kernels, the Gaussian has
// a finite self-interaction K(x,x) = 1, which the direct sum and the
// FMM's U-list both include consistently.
func (g Gaussian) Eval(dx, dy, dz float64) float64 {
	r2 := dx*dx + dy*dy + dz*dz
	return math.Exp(-r2 / (2 * g.Sigma * g.Sigma))
}

// Name implements Kernel.
func (g Gaussian) Name() string { return "gaussian3d" }
