package fmm

import (
	"math"
	"testing"
)

// evaluateAndCompare runs the FMM and the direct sum and returns the
// relative L2 error.
func evaluateAndCompare(t *testing.T, d Distribution, n int, opt Options, seed int64) (float64, *Result) {
	t.Helper()
	pts := GeneratePoints(d, n, seed)
	dens := GenerateDensities(n, seed+1)
	res, err := Evaluate(pts, dens, opt)
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSum(pts, dens, opt.Kernel, 0)
	return RelErrL2(res.Potentials, exact), res
}

func TestAccuracyUniform(t *testing.T) {
	err, _ := evaluateAndCompare(t, Uniform, 3000, Options{Q: 40}, 1)
	if err > 2e-3 {
		t.Errorf("uniform: relative L2 error %.2e too large", err)
	}
	t.Logf("uniform N=3000 Q=40 p=4: rel L2 err = %.2e", err)
}

func TestAccuracyPlummerAdaptive(t *testing.T) {
	// Plummer clusters force an adaptive tree with non-empty W/X lists.
	err, res := evaluateAndCompare(t, Plummer, 3000, Options{Q: 40}, 2)
	if err > 2e-3 {
		t.Errorf("plummer: relative L2 error %.2e too large", err)
	}
	s := res.Tree.Stats()
	if s.TotalW == 0 || s.TotalX == 0 {
		t.Error("plummer tree should exercise W and X lists")
	}
	t.Logf("plummer N=3000: rel err %.2e, W entries %d, X entries %d", err, s.TotalW, s.TotalX)
}

func TestAccuracySphere(t *testing.T) {
	err, _ := evaluateAndCompare(t, SphereSurface, 3000, Options{Q: 40}, 3)
	if err > 2e-3 {
		t.Errorf("sphere: relative L2 error %.2e too large", err)
	}
}

func TestAccuracyImprovesWithSurfaceOrder(t *testing.T) {
	err4, _ := evaluateAndCompare(t, Uniform, 2000, Options{Q: 40, SurfaceOrder: 4}, 4)
	err6, _ := evaluateAndCompare(t, Uniform, 2000, Options{Q: 40, SurfaceOrder: 6}, 4)
	if err6 >= err4 {
		t.Errorf("p=6 error %.2e not better than p=4 error %.2e", err6, err4)
	}
	t.Logf("convergence: p=4 -> %.2e, p=6 -> %.2e", err4, err6)
}

func TestFFTM2LMatchesDense(t *testing.T) {
	pts := GeneratePoints(Plummer, 2500, 5)
	dens := GenerateDensities(2500, 6)
	dense, err := Evaluate(pts, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	fftr, err := Evaluate(pts, dens, Options{Q: 30, UseFFTM2L: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := RelErrL2(fftr.Potentials, dense.Potentials); d > 1e-10 {
		t.Errorf("FFT M2L differs from dense by %.2e", d)
	}
}

func TestKernelIndependenceYukawa(t *testing.T) {
	// The same machinery must work for a different kernel with no code
	// changes — the defining KIFMM property.
	opt := Options{Q: 40, Kernel: Yukawa{Lambda: 1.5}}
	err, _ := evaluateAndCompare(t, Uniform, 2000, opt, 7)
	if err > 5e-3 {
		t.Errorf("yukawa: relative L2 error %.2e too large", err)
	}
	t.Logf("yukawa λ=1.5: rel err %.2e", err)
}

func TestSmallNDegeneratesToDirect(t *testing.T) {
	// With N <= Q the tree is one leaf and the FMM is exactly the direct
	// sum (single U-list self interaction).
	pts := GeneratePoints(Uniform, 50, 8)
	dens := GenerateDensities(50, 9)
	res, err := Evaluate(pts, dens, Options{Q: 128})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSum(pts, dens, nil, 1)
	if d := RelErrL2(res.Potentials, exact); d > 1e-13 {
		t.Errorf("single-leaf FMM differs from direct by %.2e", d)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	pts := GeneratePoints(Plummer, 1500, 10)
	dens := GenerateDensities(1500, 11)
	a, err := Evaluate(pts, dens, Options{Q: 25, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(pts, dens, Options{Q: 25, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Potentials {
		if a.Potentials[i] != b.Potentials[i] {
			t.Fatalf("potential %d differs across worker counts: %v vs %v",
				i, a.Potentials[i], b.Potentials[i])
		}
	}
}

func TestEvaluateInputErrors(t *testing.T) {
	pts := GeneratePoints(Uniform, 10, 1)
	if _, err := Evaluate(pts, make([]float64, 5), Options{}); err == nil {
		t.Error("mismatched densities accepted")
	}
	if _, err := Evaluate(nil, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDirectSumKnownTwoBody(t *testing.T) {
	// Two unit charges at distance 1: each feels 1/(4π).
	pts := []Point{{0, 0, 0}, {1, 0, 0}}
	dens := []float64{1, 1}
	out := DirectSum(pts, dens, nil, 1)
	want := 1 / (4 * math.Pi)
	for i, v := range out {
		if math.Abs(v-want) > 1e-15 {
			t.Errorf("potential[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestRelErrL2(t *testing.T) {
	if RelErrL2([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Error("identical vectors should have zero error")
	}
	if got := RelErrL2([]float64{0, 0}, []float64{3, 4}); math.Abs(got-1) > 1e-15 {
		t.Errorf("zero approx error = %v, want 1", got)
	}
	if RelErrL2([]float64{0}, []float64{0}) != 0 {
		t.Error("0/0 should be 0")
	}
}

func TestLaplaceKernelValues(t *testing.T) {
	k := Laplace{}
	if k.Eval(0, 0, 0) != 0 {
		t.Error("self-interaction must be zero")
	}
	if got := k.Eval(1, 0, 0); math.Abs(got-1/(4*math.Pi)) > 1e-16 {
		t.Errorf("K(r=1) = %v", got)
	}
	if k.Name() != "laplace3d" {
		t.Error("name wrong")
	}
	y := Yukawa{Lambda: 0}
	if math.Abs(y.Eval(0.5, 0, 0)-k.Eval(0.5, 0, 0)) > 1e-16 {
		t.Error("Yukawa λ=0 should equal Laplace")
	}
	if y.Eval(0, 0, 0) != 0 {
		t.Error("Yukawa self-interaction must be zero")
	}
}

func TestComplexityScalesLinearly(t *testing.T) {
	// The FMM's total kernel evaluations must grow ~linearly in N: going
	// 4096 -> 16384 at fixed Q should grow direct-phase work by ~4x, not
	// 16x (the quadratic signature).
	count := func(n int) float64 {
		pts := GeneratePoints(Uniform, n, 13)
		tree, err := BuildTree(pts, 64, 20)
		if err != nil {
			t.Fatal(err)
		}
		tree.BuildLists()
		ts := countPhases(tree, SurfaceCount(4), false, 4)
		var tot float64
		for ph := Phase(0); ph < NumPhases; ph++ {
			tot += float64(ts[ph].kernelEvals) + float64(ts[ph].matvecOps)
		}
		return tot
	}
	small := count(4096)
	big := count(16384)
	ratio := big / small
	if ratio > 8 {
		t.Errorf("work ratio for 4x points = %.1f; quadratic behaviour suspected", ratio)
	}
	t.Logf("4x points -> %.2fx work", ratio)
}

func TestBatchedM2LMatchesDense(t *testing.T) {
	pts := GeneratePoints(Plummer, 3000, 121)
	dens := GenerateDensities(3000, 122)
	a, err := Evaluate(pts, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(pts, dens, Options{Q: 30, UseBatchedM2L: true})
	if err != nil {
		t.Fatal(err)
	}
	// The batched path performs the same multiply-adds grouped
	// differently, so agreement is to rounding, not bitwise.
	if d := RelErrL2(b.Potentials, a.Potentials); d > 1e-12 {
		t.Errorf("batched M2L differs from per-pair dense by %.2e", d)
	}
}

func TestBatchedM2LDeterministicAcrossWorkers(t *testing.T) {
	pts := GeneratePoints(Uniform, 2000, 123)
	dens := GenerateDensities(2000, 124)
	a, err := Evaluate(pts, dens, Options{Q: 30, UseBatchedM2L: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(pts, dens, Options{Q: 30, UseBatchedM2L: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Potentials {
		if a.Potentials[i] != b.Potentials[i] {
			t.Fatal("batched M2L not deterministic across worker counts")
		}
	}
}

func TestKernelIndependenceGaussian(t *testing.T) {
	// A smooth, non-singular, non-homogeneous kernel: nothing about the
	// machinery may assume a 1/r-like singularity.
	opt := Options{Q: 40, Kernel: Gaussian{Sigma: 0.35}}
	err, _ := evaluateAndCompare(t, Uniform, 2000, opt, 31)
	if err > 1e-3 {
		t.Errorf("gaussian: relative L2 error %.2e too large", err)
	}
	t.Logf("gaussian σ=0.35: rel err %.2e", err)
}

func TestLargeScaleSoak(t *testing.T) {
	// Large-N validation without an O(N²) reference: evaluate 100k
	// sources with the FMM and spot-check a handful of probe targets
	// against the exact sum (cheap: N evals per probe).
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 100000
	pts := GeneratePoints(Plummer, n, 131)
	dens := GenerateDensities(n, 132)
	res, err := Evaluate(pts, dens, Options{Q: 100, UseBatchedM2L: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	probes := []int{0, n / 3, n / 2, 2 * n / 3, n - 1}
	for _, pi := range probes {
		var exact float64
		x := pts[pi]
		for j, y := range pts {
			exact += (Laplace{}).Eval(x.X-y.X, x.Y-y.Y, x.Z-y.Z) * dens[j]
		}
		rel := math.Abs(res.Potentials[pi]-exact) / math.Abs(exact)
		if rel > 5e-3 {
			t.Errorf("probe %d: FMM %v vs exact %v (rel %.2e)", pi, res.Potentials[pi], exact, rel)
		}
	}
}
