package fmm

import (
	"sort"
	"sync"

	"dvfsroofline/internal/linalg"
)

// Batched dense M2L: production KIFMM implementations group the V-list
// pairs of a level by their translation offset and apply each M2L
// operator once as a matrix-matrix product over the concatenated source
// vectors, instead of one matrix-vector product per pair. The arithmetic
// is identical; the memory behaviour is far better (each operator is
// read once per batch instead of once per pair).

// vPair is one V-list interaction at a level.
type vPair struct {
	target, source int32
}

// offKey packs a V-list offset into one int that sorts in the same
// lexicographic (off[0], off[1], off[2]) signed order a three-way
// comparator would give, so the per-level ordering pass is a sort.Ints
// over plain ints instead of a sort.Slice closure over [3]int8.
func offKey(off [3]int8) int {
	return (int(off[0])+128)<<16 | (int(off[1])+128)<<8 | (int(off[2]) + 128)
}

func keyOff(k int) [3]int8 {
	return [3]int8{int8(k>>16 - 128), int8(k>>8&0xff - 128), int8(k&0xff - 128)}
}

// vPhaseDenseBatched computes the V phase with offset-batched GEMMs.
//
//energylint:hotpath
func (e *engine) vPhaseDenseBatched() {
	nsurf := len(e.ops.unitSurf)
	// One grouping map for the whole phase, cleared between levels.
	groups := map[[3]int8][]vPair{}
	for lvl := range e.byLevel {
		// Group this level's pairs by offset.
		clear(groups)
		for _, i := range e.byLevel[lvl] {
			n := &e.t.Nodes[i]
			for _, v := range n.V {
				off := vOffset(n, &e.t.Nodes[v])
				//energylint:allow hotalloc(bucket sizes are data-dependent; append doubling is amortized over the level's pairs)
				groups[off] = append(groups[off], vPair{target: int32(i), source: v})
			}
		}
		if len(groups) == 0 {
			continue
		}
		// Deterministic order over offsets.
		keys := make([]int, 0, len(groups))
		for off := range groups {
			keys = append(keys, offKey(off))
		}
		sort.Ints(keys)
		offsets := make([][3]int8, len(keys))
		for oi, k := range keys {
			offsets[oi] = keyOff(k)
		}
		// Pre-build operators sequentially (deterministic eval counts).
		for _, off := range offsets {
			e.ops.m2lFor(lvl, off)
		}

		// One GEMM per offset; offsets processed in parallel. Two offsets
		// never share a target node... they can! A target has many V
		// entries with distinct offsets. Accumulation into dnCheck must
		// therefore be serialized per target: accumulate into batch-local
		// buffers and merge under a per-level mutex region. Simpler and
		// still fast: parallelize the GEMMs, serialize the scatter.
		type batchResult struct {
			pairs []vPair
			out   *linalg.Matrix // nsurf x len(pairs)
		}
		results := make([]batchResult, len(offsets))
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.opt.Workers)
		for oi, off := range offsets {
			wg.Add(1)
			//energylint:allow hotalloc(one goroutine per offset batch is the parallelism unit; its cost amortizes over a whole GEMM)
			go func(oi int, off [3]int8) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				pairs := groups[off]
				src := linalg.NewMatrix(nsurf, len(pairs))
				for j, pr := range pairs {
					col := e.upEquiv[pr.source]
					for r := 0; r < nsurf; r++ {
						src.Set(r, j, col[r])
					}
				}
				m := e.ops.m2lFor(lvl, off)
				results[oi] = batchResult{pairs: pairs, out: linalg.Mul(m, src)}
			}(oi, off)
		}
		wg.Wait()

		// Scatter sequentially (deterministic accumulation order).
		for _, br := range results {
			for j, pr := range br.pairs {
				dst := e.dnCheck[pr.target]
				for r := 0; r < nsurf; r++ {
					dst[r] += br.out.At(r, j)
				}
			}
		}
	}
}
