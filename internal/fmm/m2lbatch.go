package fmm

import (
	"sort"
	"sync"

	"dvfsroofline/internal/linalg"
)

// Batched dense M2L: production KIFMM implementations group the V-list
// pairs of a level by their translation offset and apply each M2L
// operator once as a matrix-matrix product over the concatenated source
// vectors, instead of one matrix-vector product per pair. The arithmetic
// is identical; the memory behaviour is far better (each operator is
// read once per batch instead of once per pair).

// vPair is one V-list interaction at a level.
type vPair struct {
	target, source int32
}

// vPhaseDenseBatched computes the V phase with offset-batched GEMMs.
func (e *engine) vPhaseDenseBatched() {
	nsurf := len(e.ops.unitSurf)
	for lvl := range e.byLevel {
		// Group this level's pairs by offset.
		groups := map[[3]int8][]vPair{}
		for _, i := range e.byLevel[lvl] {
			n := &e.t.Nodes[i]
			for _, v := range n.V {
				off := vOffset(n, &e.t.Nodes[v])
				groups[off] = append(groups[off], vPair{target: int32(i), source: v})
			}
		}
		if len(groups) == 0 {
			continue
		}
		// Deterministic order over offsets.
		offsets := make([][3]int8, 0, len(groups))
		for off := range groups {
			offsets = append(offsets, off)
		}
		sort.Slice(offsets, func(a, b int) bool {
			x, y := offsets[a], offsets[b]
			if x[0] != y[0] {
				return x[0] < y[0]
			}
			if x[1] != y[1] {
				return x[1] < y[1]
			}
			return x[2] < y[2]
		})
		// Pre-build operators sequentially (deterministic eval counts).
		for _, off := range offsets {
			e.ops.m2lFor(lvl, off)
		}

		// One GEMM per offset; offsets processed in parallel. Two offsets
		// never share a target node... they can! A target has many V
		// entries with distinct offsets. Accumulation into dnCheck must
		// therefore be serialized per target: accumulate into batch-local
		// buffers and merge under a per-level mutex region. Simpler and
		// still fast: parallelize the GEMMs, serialize the scatter.
		type batchResult struct {
			pairs []vPair
			out   *linalg.Matrix // nsurf x len(pairs)
		}
		results := make([]batchResult, len(offsets))
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.opt.Workers)
		for oi, off := range offsets {
			wg.Add(1)
			go func(oi int, off [3]int8) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				pairs := groups[off]
				src := linalg.NewMatrix(nsurf, len(pairs))
				for j, pr := range pairs {
					col := e.upEquiv[pr.source]
					for r := 0; r < nsurf; r++ {
						src.Set(r, j, col[r])
					}
				}
				m := e.ops.m2lFor(lvl, off)
				results[oi] = batchResult{pairs: pairs, out: linalg.Mul(m, src)}
			}(oi, off)
		}
		wg.Wait()

		// Scatter sequentially (deterministic accumulation order).
		for _, br := range results {
			for j, pr := range br.pairs {
				dst := e.dnCheck[pr.target]
				for r := 0; r < nsurf; r++ {
					dst[r] += br.out.At(r, j)
				}
			}
		}
	}
}
