package fmm

// Equivalent/check surface machinery of the kernel-independent FMM. A
// surface is a grid of points on the boundary of a cube; a box's far
// field is represented by charges ("equivalent densities") on such a
// surface, determined by matching potentials on a larger check surface.
//
// Radii follow Ying et al.'s FFT-compatible choice: the equivalent
// surface coincides with the box boundary (radius factor 1.0, so that
// surface points of same-level boxes lie on one global lattice — the
// property the FFT-accelerated M2L needs), while the check surface sits
// at radius factor 2.95, just inside the 3h boundary that non-adjacent
// boxes cannot cross.
const (
	equivRadius = 1.0
	checkRadius = 2.95
)

// SurfaceGrid returns the unit cube-surface grid with p points per edge:
// all points of the p³ lattice on [-1,1]³ that lie on the boundary. The
// count is p³ - (p-2)³ (56 for p=4, 152 for p=6).
func SurfaceGrid(p int) []Point {
	if p < 2 {
		panic("fmm: surface order must be at least 2")
	}
	var pts []Point
	step := 2.0 / float64(p-1)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			for k := 0; k < p; k++ {
				if i == 0 || i == p-1 || j == 0 || j == p-1 || k == 0 || k == p-1 {
					pts = append(pts, Point{
						X: -1 + float64(i)*step,
						Y: -1 + float64(j)*step,
						Z: -1 + float64(k)*step,
					})
				}
			}
		}
	}
	return pts
}

// SurfaceCount returns the number of points of a p-order surface grid.
func SurfaceCount(p int) int {
	inner := p - 2
	return p*p*p - inner*inner*inner
}

// placeSurface scales and translates the unit surface to a box at center
// c, half-width h, with the given radius factor.
func placeSurface(unit []Point, c Point, h, radius float64) []Point {
	out := make([]Point, len(unit))
	s := h * radius
	for i, u := range unit {
		out[i] = Point{c.X + s*u.X, c.Y + s*u.Y, c.Z + s*u.Z}
	}
	return out
}
