package fmm

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests of the FMM's mathematical invariants.

func TestSuperpositionProperty(t *testing.T) {
	// The potential operator is linear in the densities:
	// F(a*q1 + q2) == a*F(q1) + F(q2), with the same geometry.
	pts := GeneratePoints(Plummer, 1200, 91)
	q1 := GenerateDensities(1200, 92)
	q2 := GenerateDensities(1200, 93)
	opt := Options{Q: 30}

	r1, err := Evaluate(pts, q1, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(pts, q2, opt)
	if err != nil {
		t.Fatal(err)
	}

	f := func(raw int8) bool {
		a := float64(raw) / 16
		mix := make([]float64, len(q1))
		for i := range mix {
			mix[i] = a*q1[i] + q2[i]
		}
		rm, err := Evaluate(pts, mix, opt)
		if err != nil {
			return false
		}
		for i := range rm.Potentials {
			want := a*r1.Potentials[i] + r2.Potentials[i]
			if math.Abs(rm.Potentials[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestTranslationInvariance(t *testing.T) {
	// The Laplace kernel depends only on differences, so shifting every
	// point rigidly leaves the potentials unchanged.
	pts := GeneratePoints(Uniform, 1500, 94)
	dens := GenerateDensities(1500, 95)
	opt := Options{Q: 40}
	base, err := Evaluate(pts, dens, opt)
	if err != nil {
		t.Fatal(err)
	}
	shift := Point{12.5, -7.25, 3.0}
	shifted := make([]Point, len(pts))
	for i, p := range pts {
		shifted[i] = p.Add(shift)
	}
	moved, err := Evaluate(shifted, dens, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := RelErrL2(moved.Potentials, base.Potentials); d > 1e-11 {
		t.Errorf("potentials changed by %.2e under rigid translation", d)
	}
}

func TestScalingLaw(t *testing.T) {
	// Laplace's 1/r homogeneity: scaling all coordinates by s scales
	// every potential by 1/s.
	pts := GeneratePoints(Plummer, 1500, 96)
	dens := GenerateDensities(1500, 97)
	opt := Options{Q: 40}
	base, err := Evaluate(pts, dens, opt)
	if err != nil {
		t.Fatal(err)
	}
	const s = 3.5
	scaled := make([]Point, len(pts))
	for i, p := range pts {
		scaled[i] = p.Scale(s)
	}
	big, err := Evaluate(scaled, dens, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Potentials {
		want := base.Potentials[i] / s
		if math.Abs(big.Potentials[i]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("potential %d: %v vs scaled expectation %v", i, big.Potentials[i], want)
		}
	}
}

func TestReciprocityEnergySum(t *testing.T) {
	// For a symmetric kernel, Σ_i q_i f(x_i) is a quadratic form with a
	// symmetric matrix; evaluating with densities q and probing with p
	// must equal evaluating with p and probing with q.
	pts := GeneratePoints(Uniform, 1000, 98)
	q := GenerateDensities(1000, 99)
	p := GenerateDensities(1000, 100)
	opt := Options{Q: 30}
	fq, err := Evaluate(pts, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Evaluate(pts, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	var a, b float64
	for i := range pts {
		a += p[i] * fq.Potentials[i]
		b += q[i] * fp.Potentials[i]
	}
	if rel := math.Abs(a-b) / (math.Abs(a) + 1e-300); rel > 1e-10 {
		t.Errorf("reciprocity violated: %v vs %v (rel %.2e)", a, b, rel)
	}
}

func TestPotentialsAllFinite(t *testing.T) {
	// Including coincident points (self-interaction defined as zero).
	pts := GeneratePoints(Uniform, 800, 101)
	pts = append(pts, pts[0], pts[1], pts[2]) // duplicates
	dens := GenerateDensities(len(pts), 102)
	res, err := Evaluate(pts, dens, Options{Q: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Potentials {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("potential %d is %v", i, v)
		}
	}
}
