package fmm

import (
	"strings"
	"testing"
)

func TestPhaseStringsAndOrder(t *testing.T) {
	want := map[Phase]string{
		PhaseUp: "UP", PhaseU: "U", PhaseV: "V",
		PhaseW: "W", PhaseX: "X", PhaseDown: "DOWN",
	}
	for ph, s := range want {
		if ph.String() != s {
			t.Errorf("phase %d prints %q, want %q", int(ph), ph.String(), s)
		}
	}
	if !strings.HasPrefix(Phase(99).String(), "Phase(") {
		t.Error("unknown phase string wrong")
	}
	order := Phases()
	if len(order) != int(NumPhases) {
		t.Fatalf("Phases() returned %d phases, want %d", len(order), NumPhases)
	}
	// The downward pass must come after V and X (whose results it
	// consumes) and before the leaf phases that read local expansions.
	pos := map[Phase]int{}
	for i, ph := range order {
		pos[ph] = i
	}
	if !(pos[PhaseUp] < pos[PhaseV] && pos[PhaseV] < pos[PhaseDown] && pos[PhaseX] < pos[PhaseDown]) {
		t.Errorf("phase order %v violates data dependencies", order)
	}
}

func TestPhaseOccupanciesMatchPaperRegime(t *testing.T) {
	// §IV-C: the FMM delivers less than a quarter of peak IPC; the
	// U-list phase is the extreme case.
	for ph := Phase(0); ph < NumPhases; ph++ {
		occ := ph.Occupancy()
		if occ <= 0 || occ > 1 {
			t.Errorf("%v occupancy %v out of range", ph, occ)
		}
		if occ > 0.5 {
			t.Errorf("%v occupancy %v too high for the paper's underutilized FMM", ph, occ)
		}
	}
	if PhaseU.Occupancy() != 0.25 {
		t.Errorf("U-phase occupancy %v, paper says ~1/4 of peak", PhaseU.Occupancy())
	}
}

func TestCountPhasesUMatchesListStructure(t *testing.T) {
	// The U-phase kernel-eval tally must equal the exact pairwise count
	// implied by the interaction lists.
	tree := buildListedTree(t, Plummer, 2000, 30, 5)
	ts := countPhases(tree, SurfaceCount(4), false, 4)
	var want int64
	for _, li := range tree.Leaves() {
		n := &tree.Nodes[li]
		for _, u := range n.U {
			want += int64(n.NumTargets()) * int64(tree.Nodes[u].NumSources())
		}
	}
	if ts[PhaseU].kernelEvals != want {
		t.Errorf("U-phase evals = %d, lists imply %d", ts[PhaseU].kernelEvals, want)
	}
}

func TestCountPhasesP2ML2PMatchPointCounts(t *testing.T) {
	tree := buildListedTree(t, Uniform, 3000, 50, 6)
	ns := int64(SurfaceCount(4))
	ts := countPhases(tree, int(ns), false, 4)
	var srcPts, trgPts int64
	for _, li := range tree.Leaves() {
		srcPts += int64(tree.Nodes[li].NumSources())
		trgPts += int64(tree.Nodes[li].NumTargets())
	}
	if ts[PhaseUp].kernelEvals != srcPts*ns {
		t.Errorf("P2M evals = %d, want %d", ts[PhaseUp].kernelEvals, srcPts*ns)
	}
	if ts[PhaseDown].kernelEvals != trgPts*ns {
		t.Errorf("L2P evals = %d, want %d", ts[PhaseDown].kernelEvals, trgPts*ns)
	}
}

func TestCountPhasesVDenseVsFFT(t *testing.T) {
	// Dense and FFT counting must agree on the number of V pairs, even
	// though they charge different work per pair.
	tree := buildListedTree(t, Uniform, 4096, 60, 7)
	ns := int64(SurfaceCount(4))
	dense := countPhases(tree, int(ns), false, 4)
	fftTally := countPhases(tree, int(ns), true, 4)

	var pairs int64
	for i := range tree.Nodes {
		pairs += int64(len(tree.Nodes[i].V))
	}
	if dense[PhaseV].matvecOps != pairs*ns*ns {
		t.Errorf("dense V matvec ops = %d, want %d", dense[PhaseV].matvecOps, pairs*ns*ns)
	}
	nfft := int64(8 * 8 * 8)
	if fftTally[PhaseV].fftPoints != pairs*nfft {
		t.Errorf("FFT V points = %d, want %d", fftTally[PhaseV].fftPoints, pairs*nfft)
	}
	if fftTally[PhaseV].fftFlops <= 0 {
		t.Error("FFT transforms not counted")
	}
}

func TestProfileConversionPositive(t *testing.T) {
	tl := tally{kernelEvals: 1000, matvecOps: 500, fftFlops: 200,
		fftPoints: 64, tileWords: 300, gridReads: 400, smWords: 100,
		streamWords: 50, operandWords: 25}
	p := tl.Profile()
	if p.Instructions() <= 0 || p.Accesses() <= 0 {
		t.Fatalf("degenerate profile: %+v", p)
	}
	// Traffic conservation: every tallied word lands in exactly one
	// level, so totals must match the closed form.
	wantWords := float64(1000*smWordsPerEval+500) + 100 + 300 + 400 + 50 + 25
	if p.Accesses() != wantWords {
		t.Errorf("accesses = %v, want %v", p.Accesses(), wantWords)
	}
}

func TestPhaseProfilesTotal(t *testing.T) {
	var pp PhaseProfiles
	pp[PhaseU].Int = 5
	pp[PhaseV].Int = 7
	pp[PhaseUp].DRAMWords = 3
	tot := pp.Total()
	if tot.Int != 12 || tot.DRAMWords != 3 {
		t.Errorf("total wrong: %+v", tot)
	}
}
