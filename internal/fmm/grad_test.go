package fmm

import (
	"math"
	"testing"
)

func gradRelErr(approx, exact []Gradient) float64 {
	var num, den float64
	for i := range approx {
		for c := 0; c < 3; c++ {
			d := approx[i][c] - exact[i][c]
			num += d * d
			den += exact[i][c] * exact[i][c]
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

func TestLaplaceGradAnalytic(t *testing.T) {
	// ∇ₓ 1/(4π|r|) at r = (2,0,0): -1/(4π·4) in x.
	k, gx, gy, gz := Laplace{}.EvalGrad(2, 0, 0)
	if math.Abs(k-1/(8*math.Pi)) > 1e-16 {
		t.Errorf("K = %v", k)
	}
	want := -1 / (16 * math.Pi)
	if math.Abs(gx-want) > 1e-16 || gy != 0 || gz != 0 {
		t.Errorf("grad = (%v,%v,%v), want (%v,0,0)", gx, gy, gz, want)
	}
	// Self-interaction is zero.
	if k, gx, _, _ := (Laplace{}).EvalGrad(0, 0, 0); k != 0 || gx != 0 {
		t.Error("self-interaction gradient not zero")
	}
}

func TestGradMatchesFiniteDifference(t *testing.T) {
	// Property-style: the analytic kernel gradients agree with central
	// finite differences of Eval.
	kernels := []GradientKernel{Laplace{}, Yukawa{Lambda: 2.0}}
	dirs := []Point{{0.7, -0.3, 0.4}, {1.5, 0.2, -0.9}, {-0.4, -0.4, 0.4}}
	const h = 1e-6
	for _, k := range kernels {
		for _, d := range dirs {
			_, gx, gy, gz := k.EvalGrad(d.X, d.Y, d.Z)
			fdx := (k.Eval(d.X+h, d.Y, d.Z) - k.Eval(d.X-h, d.Y, d.Z)) / (2 * h)
			fdy := (k.Eval(d.X, d.Y+h, d.Z) - k.Eval(d.X, d.Y-h, d.Z)) / (2 * h)
			fdz := (k.Eval(d.X, d.Y, d.Z+h) - k.Eval(d.X, d.Y, d.Z-h)) / (2 * h)
			for _, pair := range [][2]float64{{gx, fdx}, {gy, fdy}, {gz, fdz}} {
				if math.Abs(pair[0]-pair[1]) > 1e-5*(1+math.Abs(pair[1])) {
					t.Errorf("%s at %v: grad %v vs FD %v", k.Name(), d, pair[0], pair[1])
				}
			}
		}
	}
}

func TestEvaluateGradMatchesDirect(t *testing.T) {
	pts := GeneratePoints(Plummer, 2000, 111)
	dens := GenerateDensities(2000, 112)
	res, grad, err := EvaluateGrad(pts, dens, Options{Q: 40})
	if err != nil {
		t.Fatal(err)
	}
	exactPot := DirectSum(pts, dens, nil, 0)
	if e := RelErrL2(res.Potentials, exactPot); e > 2e-3 {
		t.Errorf("potential error %.2e", e)
	}
	exactGrad := DirectGradAt(pts, pts, dens, Laplace{})
	if e := gradRelErr(grad, exactGrad); e > 5e-3 {
		t.Errorf("gradient error %.2e", e)
	}
	t.Logf("gradient rel L2 error: %.2e", gradRelErr(grad, exactGrad))
}

func TestEvaluateGradAtDistinctSets(t *testing.T) {
	sources := GeneratePoints(Uniform, 2500, 113)
	targets := GeneratePoints(SphereSurface, 800, 114)
	dens := GenerateDensities(2500, 115)
	_, grad, err := EvaluateGradAt(targets, sources, dens, Options{Q: 50})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectGradAt(targets, sources, dens, Laplace{})
	if e := gradRelErr(grad, exact); e > 5e-3 {
		t.Errorf("dual-set gradient error %.2e", e)
	}
}

func TestEvaluateGradYukawa(t *testing.T) {
	pts := GeneratePoints(Uniform, 1500, 116)
	dens := GenerateDensities(1500, 117)
	k := Yukawa{Lambda: 1.0}
	_, grad, err := EvaluateGrad(pts, dens, Options{Q: 40, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectGradAt(pts, pts, dens, k)
	if e := gradRelErr(grad, exact); e > 1e-2 {
		t.Errorf("yukawa gradient error %.2e", e)
	}
}

// nonGradKernel is a kernel without gradient support, for the error path.
type nonGradKernel struct{}

func (nonGradKernel) Eval(dx, dy, dz float64) float64 { return Laplace{}.Eval(dx, dy, dz) }
func (nonGradKernel) Name() string                    { return "nograd" }

func TestEvaluateGradRequiresGradientKernel(t *testing.T) {
	pts := GeneratePoints(Uniform, 100, 118)
	dens := GenerateDensities(100, 119)
	if _, _, err := EvaluateGrad(pts, dens, Options{Kernel: nonGradKernel{}}); err == nil {
		t.Error("kernel without gradients accepted")
	}
	if _, _, err := EvaluateGradAt(pts, pts, dens, Options{Kernel: nonGradKernel{}}); err == nil {
		t.Error("kernel without gradients accepted (dual)")
	}
}

func TestEvaluateGradInputErrors(t *testing.T) {
	pts := GeneratePoints(Uniform, 10, 1)
	if _, _, err := EvaluateGrad(pts, make([]float64, 3), Options{}); err == nil {
		t.Error("density mismatch accepted")
	}
	if _, _, err := EvaluateGradAt(pts, pts, make([]float64, 3), Options{}); err == nil {
		t.Error("density mismatch accepted (dual)")
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	// For two equal charges, forces (gradients of the pair potential) are
	// equal and opposite.
	pts := []Point{{0.2, 0.2, 0.2}, {0.8, 0.7, 0.6}}
	dens := []float64{1, 1}
	_, grad, err := EvaluateGrad(pts, dens, Options{Q: 8})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if math.Abs(grad[0][c]+grad[1][c]) > 1e-12 {
			t.Errorf("component %d: %v and %v not antisymmetric", c, grad[0][c], grad[1][c])
		}
	}
}
