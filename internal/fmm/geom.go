// Package fmm implements the kernel-independent fast multipole method
// (KIFMM) of Ying, Zorin & Biros in three dimensions — the paper's proxy
// application (§III) — together with the substrates it needs: adaptive
// octrees with U/V/W/X interaction lists, equivalent-surface translation
// operators (dense and FFT-accelerated M2L), a direct O(N²) summation
// baseline, and per-phase operation counting that feeds the DVFS-aware
// energy model.
package fmm

import (
	"fmt"
	"math"

	"dvfsroofline/internal/stats"
)

// Point is a location in R³.
type Point struct {
	X, Y, Z float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y, s * p.Z} }

// MaxAbs returns the Chebyshev (infinity) norm of p.
func (p Point) MaxAbs() float64 {
	return math.Max(math.Abs(p.X), math.Max(math.Abs(p.Y), math.Abs(p.Z)))
}

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 {
	return math.Sqrt(p.X*p.X + p.Y*p.Y + p.Z*p.Z)
}

// Distribution selects a synthetic point distribution for experiments.
type Distribution int

const (
	// Uniform fills the unit cube uniformly at random — the regular
	// workload whose octree is (nearly) complete.
	Uniform Distribution = iota
	// Plummer draws from the Plummer model of a globular star cluster —
	// the highly non-uniform astrophysics workload that exercises the
	// adaptive tree's W and X lists.
	Plummer
	// SphereSurface places points on the surface of a sphere — the
	// boundary-integral workload typical of KIFMM applications.
	SphereSurface
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Plummer:
		return "plummer"
	case SphereSurface:
		return "sphere"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// GeneratePoints returns n points of the given distribution, scaled into
// the unit cube [0,1)³, using a deterministic seed.
func GeneratePoints(d Distribution, n int, seed int64) []Point {
	if n <= 0 {
		panic(fmt.Sprintf("fmm: invalid point count %d", n))
	}
	rng := stats.NewRNG(seed)
	pts := make([]Point, n)
	switch d {
	case Uniform:
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64(), rng.Float64()}
		}
	case Plummer:
		for i := range pts {
			pts[i] = plummerPoint(rng)
		}
		normalizeToUnitCube(pts)
	case SphereSurface:
		for i := range pts {
			// Marsaglia's method for a uniform point on S².
			var x, y, s float64
			for {
				x = 2*rng.Float64() - 1
				y = 2*rng.Float64() - 1
				s = x*x + y*y
				if s < 1 && s > 0 {
					break
				}
			}
			f := 2 * math.Sqrt(1-s)
			pts[i] = Point{
				X: 0.5 + 0.45*x*f,
				Y: 0.5 + 0.45*y*f,
				Z: 0.5 + 0.45*(1-2*s),
			}
		}
	default:
		panic(fmt.Sprintf("fmm: unknown distribution %d", int(d)))
	}
	return pts
}

// plummerPoint samples the Plummer density with unit scale radius,
// truncated at radius 10.
func plummerPoint(rng *stats.RNG) Point {
	for {
		m := rng.Float64()
		r := 1 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		if r > 10 {
			continue
		}
		// Uniform direction.
		z := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		s := math.Sqrt(1 - z*z)
		return Point{r * s * math.Cos(phi), r * s * math.Sin(phi), r * z}
	}
}

// normalizeToUnitCube rescales points into [0.001, 0.999]³ preserving
// aspect ratio.
func normalizeToUnitCube(pts []Point) {
	lo := pts[0]
	hi := pts[0]
	for _, p := range pts {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	span := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))
	if span == 0 {
		span = 1
	}
	scale := 0.998 / span
	for i := range pts {
		pts[i] = Point{
			X: 0.001 + (pts[i].X-lo.X)*scale,
			Y: 0.001 + (pts[i].Y-lo.Y)*scale,
			Z: 0.001 + (pts[i].Z-lo.Z)*scale,
		}
	}
}

// GenerateDensities returns n source densities in [-1, 1), seeded.
func GenerateDensities(n int, seed int64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 2*rng.Float64() - 1
	}
	return out
}
