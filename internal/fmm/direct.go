package fmm

import (
	"math"
	"runtime"
	"sync"
)

// DirectSum evaluates the n-body sums exactly in O(N²) — the baseline the
// FMM approximates and the reference for accuracy tests. The computation
// is parallelized over targets.
func DirectSum(points []Point, densities []float64, k Kernel, workers int) []float64 {
	return DirectSumAt(points, points, densities, k, workers)
}

// DirectSumAt evaluates the exact potentials at arbitrary target points
// due to the given sources — the O(N·M) reference for EvaluateAt.
func DirectSumAt(targets, sources []Point, densities []float64, k Kernel, workers int) []float64 {
	if len(sources) != len(densities) {
		panic("fmm: DirectSumAt length mismatch")
	}
	if k == nil {
		k = Laplace{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(targets)
	out := make([]float64, n)
	chunk := (n + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			evalSum(k, targets[lo:hi], out[lo:hi], sources, densities)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// RelErrL2 returns the relative L2 error ||approx - exact|| / ||exact||,
// the accuracy metric used in FMM literature.
func RelErrL2(approx, exact []float64) float64 {
	if len(approx) != len(exact) {
		panic("fmm: RelErrL2 length mismatch")
	}
	var num, den float64
	for i := range approx {
		d := approx[i] - exact[i]
		num += d * d
		den += exact[i] * exact[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return 1
	}
	return math.Sqrt(num / den)
}
