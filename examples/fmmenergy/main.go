// fmmenergy: end-to-end energy analysis of the fast multipole method —
// the paper's §IV study in miniature. It runs a real kernel-independent
// FMM evaluation on a Plummer (astrophysics) particle distribution,
// verifies its accuracy against direct summation, profiles each of the
// six phases, and uses the fitted energy model to locate the energy
// bottlenecks.
//
// Run with:
//
//	go run ./examples/fmmenergy
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func main() {
	log.SetFlags(0)

	const n = 30000
	pts := fmm.GeneratePoints(fmm.Plummer, n, 7)
	dens := fmm.GenerateDensities(n, 8)

	res, err := fmm.Evaluate(pts, dens, fmm.Options{Q: 100, UseFFTM2L: true})
	if err != nil {
		log.Fatal(err)
	}
	exact := fmm.DirectSum(pts, dens, nil, 0)
	fmt.Printf("FMM on a Plummer cluster: N=%d, %d leaves, depth %d\n",
		n, res.Tree.NumLeaves(), res.Tree.Depth())
	fmt.Printf("Accuracy vs direct sum: rel L2 error %.2e\n\n", fmm.RelErrL2(res.Potentials, exact))

	// Calibrate the model and analyze where the FMM spends its energy at
	// the maximum frequency setting.
	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, experiments.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	s := dvfs.MaxSetting()

	fmt.Println("Per-phase profile and predicted energy at 852/924 MHz:")
	var totalE units.Joule
	var totalT units.Second
	for _, ph := range fmm.Phases() {
		p := res.Profiles[ph]
		if p.Instructions() == 0 && p.Accesses() == 0 {
			fmt.Printf("  %-5s (empty: tree is %s)\n", ph, "level-uniform or list unused")
			continue
		}
		exec := dev.Execute(tegra.Workload{Profile: p, Occupancy: units.Ratio(ph.Occupancy())}, s)
		parts := cal.Model.PredictParts(p, s, exec.Time)
		totalE += parts.Total()
		totalT += exec.Time
		fmt.Printf("  %-5s %8.4f s  %7.3f J   int %4.1f%% of instrs, DRAM %4.1f%% of words\n",
			ph, exec.Time, parts.Total(), 100*p.IntegerFraction(), 100*p.DRAMFraction())
	}
	fmt.Printf("  total %8.4f s  %7.3f J\n\n", totalT, totalE)

	tot := res.Profiles.Total()
	parts := cal.Model.PredictParts(tot, s, totalT)
	fmt.Println("Energy bottleneck analysis (the paper's Figure 6/7 view):")
	fmt.Printf("  computation %5.1f%%   (integer ops are %.0f%% of instructions but only %.0f%% of compute energy)\n",
		100*parts.Compute()/parts.Total(), 100*tot.IntegerFraction(), 100*parts.Int/parts.Compute())
	fmt.Printf("  data        %5.1f%%   (DRAM is %.0f%% of accesses but %.0f%% of data energy)\n",
		100*parts.Data()/parts.Total(), 100*tot.DRAMFraction(), 100*parts.DRAM/parts.Data())
	fmt.Printf("  constant    %5.1f%%   -> energy-optimal DVFS = time-optimal DVFS for this app\n",
		100*parts.Constant/parts.Total())
}
