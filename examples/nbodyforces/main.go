// nbodyforces: gravitational accelerations for a star cluster with the
// kernel-independent FMM, including the force field (potential
// gradients), validated against direct summation — plus the energy cost
// of the computation on the simulated Jetson TK1 at two DVFS settings.
//
// Run with:
//
//	go run ./examples/nbodyforces
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func main() {
	log.SetFlags(0)

	const n = 20000
	// A Plummer-model cluster with equal masses.
	pts := fmm.GeneratePoints(fmm.Plummer, n, 17)
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = 1.0 / n
	}

	t0 := time.Now()
	res, grad, err := fmm.EvaluateGrad(pts, masses, fmm.Options{Q: 80})
	if err != nil {
		log.Fatal(err)
	}
	fmmWall := time.Since(t0)

	t0 = time.Now()
	exactPot := fmm.DirectSum(pts, masses, nil, 0)
	exactGrad := fmm.DirectGradAt(pts, pts, masses, fmm.Laplace{})
	directWall := time.Since(t0)

	var num, den float64
	for i := range grad {
		for c := 0; c < 3; c++ {
			d := grad[i][c] - exactGrad[i][c]
			num += d * d
			den += exactGrad[i][c] * exactGrad[i][c]
		}
	}
	fmt.Printf("N-body forces for a %d-star Plummer cluster:\n", n)
	fmt.Printf("  FMM %v vs direct %v (%.1fx)\n", fmmWall.Round(time.Millisecond),
		directWall.Round(time.Millisecond), float64(directWall)/float64(fmmWall))
	fmt.Printf("  potential error %.2e, force error %.2e\n",
		fmm.RelErrL2(res.Potentials, exactPot), math.Sqrt(num/den))

	// Total momentum change must vanish (Newton's third law): sum of
	// mass-weighted forces ~ 0.
	var fx, fy, fz float64
	for i := range grad {
		fx += masses[i] * grad[i][0]
		fy += masses[i] * grad[i][1]
		fz += masses[i] * grad[i][2]
	}
	fmt.Printf("  net force (should be ~0): (%.2e, %.2e, %.2e)\n\n", fx, fy, fz)

	// What would one force evaluation cost on the Jetson TK1?
	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, experiments.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []dvfs.Setting{dvfs.MaxSetting(), dvfs.MustSetting(396, 528)} {
		var dur units.Second
		for _, ph := range fmm.Phases() {
			p := res.Profiles[ph]
			if p.Instructions() == 0 && p.Accesses() == 0 {
				continue
			}
			dur += dev.Execute(tegra.Workload{Profile: p, Occupancy: units.Ratio(ph.Occupancy())}, s).Time
		}
		e := cal.Model.Predict(res.Profiles.Total(), s, dur)
		fmt.Printf("  on TK1 at %v: %.3f s, %.2f J per step\n", s, dur, e)
	}
}
