// Quickstart: calibrate the DVFS-aware energy roofline on the simulated
// Jetson TK1 and use it to predict the energy of a kernel and to choose
// an energy-optimal DVFS setting.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func main() {
	log.SetFlags(0)

	// 1. A simulated Jetson TK1 and the calibration pipeline: run the
	// intensity microbenchmarks over 16 DVFS settings, measure them with
	// the simulated PowerMon 2, and fit Eq. 9 by NNLS.
	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, experiments.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	model := cal.Model
	fmt.Printf("Fitted energy model from %d measurements.\n", len(cal.Samples))
	fmt.Printf("Holdout validation error: %.2f%% mean\n\n", cal.Holdout.Percent().Mean)

	// 2. Describe a kernel by its performance-counter profile — here,
	// a double-precision stencil-like kernel: 2 G DP FMA, 3 G integer
	// ops, 400 M words of L2 traffic, 100 M words of DRAM traffic.
	kernel := counters.Profile{
		DPFMA:     2e9,
		Int:       3e9,
		L2Words:   4e8,
		DRAMWords: 1e8,
	}

	// 3. Predict energy at two settings, using the device's measured
	// execution times.
	for _, s := range []dvfs.Setting{dvfs.MaxSetting(), dvfs.MustSetting(396, 528)} {
		exec := dev.Execute(tegra.Workload{Profile: kernel, Occupancy: 0.5}, s)
		parts := model.PredictParts(kernel, s, exec.Time)
		fmt.Printf("At %v:\n", s)
		fmt.Printf("  time %.3f s, predicted energy %.2f J\n", exec.Time, parts.Total())
		fmt.Printf("  breakdown: compute %.1f%%, data %.1f%%, constant %.1f%%\n",
			100*parts.Compute()/parts.Total(), 100*parts.Data()/parts.Total(),
			100*parts.Constant/parts.Total())
	}

	// 4. Autotune: pick the energy-minimal setting over the whole grid.
	var best dvfs.Setting
	bestE := units.Joule(0)
	for i, s := range dvfs.Grid() {
		exec := dev.Execute(tegra.Workload{Profile: kernel, Occupancy: 0.5}, s)
		if e := model.Predict(kernel, s, exec.Time); i == 0 || e < bestE {
			best, bestE = s, e
		}
	}
	fmt.Printf("\nModel-chosen energy-optimal setting: %v (predicted %.2f J)\n", best, bestE)
}
