// customdevice: the paper's replication pitch in practice — "users can
// easily replicate our experiments on their own systems". We describe a
// hypothetical next-generation SoC (lower per-op energies, higher leak),
// run the same calibration pipeline against it, and compare the fitted
// per-operation costs and the FMM's constant-power share against the
// Tegra K1's.
//
// Run with:
//
//	go run ./examples/customdevice
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
)

func main() {
	log.SetFlags(0)

	// Start from the TK1 ground truth and describe a die-shrunk
	// successor: 40% cheaper operations, 25% cheaper DRAM, but 20% more
	// leakage (a classic process-node trade).
	params := tegra.TK1Params()
	params.SPpJ *= 0.6
	params.DPpJ *= 0.6
	params.IntpJ *= 0.6
	params.SharedpJ *= 0.6
	params.L2pJ *= 0.6
	params.DRAMpJ *= 0.75
	params.LeakProcWpV *= 1.2
	params.LeakMemWpV *= 1.2
	custom, err := tegra.NewCustomDevice(params)
	if err != nil {
		log.Fatal(err)
	}

	cfg := experiments.Config{Seed: 9}
	for _, d := range []struct {
		name string
		dev  *tegra.Device
	}{{"Tegra K1", tegra.NewDevice()}, {"hypothetical shrink", custom}} {
		cal, err := experiments.Calibrate(context.Background(), d.dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e := cal.Model.EpsAt(dvfs.MaxSetting())
		fmt.Printf("%s (fitted at 852/924 MHz):\n", d.name)
		fmt.Printf("  ε: SP %.1f, DP %.1f, Int %.1f, SM %.1f, L2 %.1f, DRAM %.1f pJ; π0 %.2f W\n",
			e.SP, e.DP, e.Int, e.SM, e.L2, e.DRAM, e.ConstPower)
		fmt.Printf("  holdout error: %.2f%% mean\n", cal.Holdout.Percent().Mean)

		run, err := experiments.RunFMMInput(
			experiments.FMMInput{ID: "F8s", N: 16384, Q: 64}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		meter, err := cfg.NewMeter(77)
		if err != nil {
			log.Fatal(err)
		}
		c, err := experiments.RunFMMCase(d.dev, meter, cal.Model, run, "S1", dvfs.MaxSetting())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  FMM at max frequency: %.2f J, constant power %.0f%% of total\n\n",
			c.MeasuredEnergy, c.ConstantFraction()*100)
	}
	fmt.Println("Cheaper operations with higher leakage push the constant-power share even")
	fmt.Println("higher — the §IV-C dominance worsens on die-shrunk parts, which is why the")
	fmt.Println("paper argues underutilized applications gain little from DVFS alone.")
}
