// starcluster: a short gravitational n-body simulation driven by the
// FMM (internal/nbody), with conservation diagnostics and the per-step
// energy cost the simulated Jetson TK1 would pay at two DVFS settings.
//
// Run with:
//
//	go run ./examples/starcluster
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/nbody"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func main() {
	log.SetFlags(0)

	const n = 8000
	pos := fmm.GeneratePoints(fmm.Plummer, n, 55)
	vel := make([]fmm.Point, n)
	mass := make([]float64, n)
	for i := range mass {
		mass[i] = 1.0 / n
	}
	sys, err := nbody.NewSystem(pos, vel, mass, 0.02, fmm.Options{Q: 64})
	if err != nil {
		log.Fatal(err)
	}

	e0, err := sys.TotalEnergy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cold-collapse of a %d-star Plummer cluster (FMM forces):\n", n)
	fmt.Printf("  step 0: E = %.4f, K = %.4f\n", e0, sys.KineticEnergy())

	const steps = 10
	for i := 1; i <= steps; i++ {
		if err := sys.Step(5e-4); err != nil {
			log.Fatal(err)
		}
		if i%5 == 0 {
			e, err := sys.TotalEnergy()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  step %d: E = %.4f (drift %+.2e), K = %.4f\n",
				i, e, (e-e0)/e0, sys.KineticEnergy())
		}
	}
	p := sys.Momentum()
	fmt.Printf("  net momentum after %d steps: %.2e (exactly 0 in exact arithmetic)\n\n",
		steps, p.Norm())

	// Energy cost per force evaluation on the TK1, via the fitted model.
	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, experiments.Config{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := fmm.EvaluateGrad(sys.Pos, sys.Mass, sys.Opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Per-step cost on the simulated Jetson TK1 (2 force evaluations/step):")
	for _, s := range []dvfs.Setting{dvfs.MaxSetting(), dvfs.MustSetting(540, 528)} {
		var dur units.Second
		for _, ph := range fmm.Phases() {
			prof := res.Profiles[ph]
			if prof.Instructions() == 0 && prof.Accesses() == 0 {
				continue
			}
			dur += dev.Execute(tegra.Workload{Profile: prof, Occupancy: units.Ratio(ph.Occupancy())}, s).Time
		}
		e := cal.Model.Predict(res.Profiles.Total(), s, dur)
		fmt.Printf("  %v: %.3f s and %.2f J per evaluation\n", s, dur, e)
	}
}
