// quadtree: the paper's Figure 3 in running code — an adaptive 2-D
// quadtree over a non-uniform point set, with the U, V, W and X
// interaction lists of one leaf box printed out, plus an accuracy check
// of the full 2-D kernel-independent FMM against direct summation.
//
// Run with:
//
//	go run ./examples/quadtree
package main

import (
	"fmt"
	"log"

	"dvfsroofline/internal/fmm2d"
)

func main() {
	log.SetFlags(0)

	const n = 6000
	pts := fmm2d.GeneratePoints(fmm2d.Disk, n, 33)
	dens := fmm2d.GenerateDensities(n, 34)

	tree, err := fmm2d.BuildTree(pts, 40, 24)
	if err != nil {
		log.Fatal(err)
	}
	tree.BuildLists()
	fmt.Printf("Adaptive quadtree over a %d-point disk cluster:\n", n)
	fmt.Printf("  %d nodes, %d leaves, depth %d\n\n", len(tree.Nodes), tree.NumLeaves(), tree.Depth())

	// Find a leaf like the paper's box B: one with all four lists
	// non-empty (only adaptive trees have W/X entries).
	b := -1
	for _, li := range tree.Leaves() {
		nd := &tree.Nodes[li]
		if len(nd.U) > 0 && len(nd.V) > 0 && len(nd.W) > 0 && len(nd.X) > 0 {
			b = li
			break
		}
	}
	if b < 0 {
		fmt.Println("no leaf with all four lists; tree may be too uniform")
	} else {
		nd := &tree.Nodes[b]
		fmt.Printf("Box B (leaf %d, level %d, center %.3f,%.3f):\n", b, nd.Level, nd.Center.X, nd.Center.Y)
		fmt.Printf("  U list: %2d adjacent leaves (direct interactions)\n", len(nd.U))
		fmt.Printf("  V list: %2d same-level far boxes (M2L translations)\n", len(nd.V))
		fmt.Printf("  W list: %2d finer non-adjacent boxes (equivalent densities -> targets)\n", len(nd.W))
		fmt.Printf("  X list: %2d coarser duals (sources -> check surface)\n", len(nd.X))
	}

	res, err := fmm2d.Evaluate(pts, dens, fmm2d.Options{Q: 40})
	if err != nil {
		log.Fatal(err)
	}
	exact := fmm2d.DirectSum(pts, dens, nil, 0)
	fmt.Printf("\n2-D KIFMM vs direct sum (log kernel): rel L2 error %.2e\n",
		fmm2d.RelErrL2(res.Potentials, exact))
}
