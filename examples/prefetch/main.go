// prefetch: the paper's §VI what-if scenario — "deciding whether to use
// prefetching". The energy model estimates how much energy turning
// prefetching off would save (from not loading unused data) and how the
// resulting slowdown feeds back into constant-power energy, possibly
// increasing the total. Uses core.PrefetchAdvice / PrefetchBreakEven.
//
// Run with:
//
//	go run ./examples/prefetch
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func main() {
	log.SetFlags(0)

	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, experiments.Config{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	s := dvfs.MaxSetting()

	// A pointer-chasing kernel: with prefetching, the hardware loads
	// whole lines of which only 40% is used; without it, only the needed
	// words move, but each access stalls the pipeline (+25% runtime).
	const usedWords = 5e8
	scenario := core.PrefetchScenario{
		Profile: counters.Profile{
			DPFMA:     3e8,
			Int:       9e8,
			DRAMWords: usedWords / 0.40,
		},
		UsedFraction: 0.40,
		Slowdown:     1.25,
	}
	exec := dev.Execute(tegra.Workload{Profile: scenario.Profile, Occupancy: 0.45}, s)
	scenario.TimeWithPrefetch = exec.Time

	v, err := cal.Model.PrefetchAdvice(scenario, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Prefetching what-if (paper §VI):")
	fmt.Printf("  with prefetch:    %.3f s, %6.2f J\n", scenario.TimeWithPrefetch, v.WithPrefetchJ)
	fmt.Printf("  without prefetch: %.3f s, %6.2f J\n",
		float64(scenario.TimeWithPrefetch)*float64(scenario.Slowdown), v.WithoutPrefetchJ)
	fmt.Printf("\n  disabling prefetch saves %.2f J of DRAM energy but pays %.2f J of\n",
		v.DRAMSavedJ, v.ConstantPaidJ)
	fmt.Printf("  constant-power energy from running %.0f%% longer.\n", (scenario.Slowdown-1)*100)
	if v.KeepPrefetch {
		fmt.Printf("  verdict: keep prefetching ON (turning it off costs %.2f J).\n",
			v.WithoutPrefetchJ-v.WithPrefetchJ)
	} else {
		fmt.Printf("  verdict: turn prefetching OFF (saves %.2f J).\n",
			v.WithPrefetchJ-v.WithoutPrefetchJ)
	}

	be, err := cal.Model.PrefetchBreakEven(scenario, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  break-even: prefetching pays off while more than %.0f%% of the\n", be*100)
	fmt.Println("  prefetched data is actually used; below that, turn it off.")

	// The break-even moves with the slowdown penalty.
	for _, sd := range []units.Ratio{1.05, 1.25, 1.6} {
		sc := scenario
		sc.Slowdown = sd
		b, err := cal.Model.PrefetchBreakEven(sc, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    slowdown %.2fx -> break-even at %4.1f%% utilization\n", sd, b*100)
	}
}
