// autotuning: model-based DVFS selection versus race-to-halt for a
// user-defined workload, demonstrating the paper's §II-E result that the
// fastest configuration is not always the most energy-efficient one.
//
// Run with:
//
//	go run ./examples/autotuning
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
)

func main() {
	log.SetFlags(0)

	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, experiments.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	meter := powermon.MustMeter(powermon.DefaultConfig(), 99)

	// Two contrasting workloads: a compute-bound SP kernel and a
	// bandwidth-bound streaming kernel.
	workloads := []struct {
		name string
		prof counters.Profile
	}{
		{"compute-bound (SP heavy)", counters.Profile{SP: 4e10, Int: 8e8, DRAMWords: 1e8}},
		{"bandwidth-bound (stream)", counters.Profile{SP: 2e8, Int: 4e8, DRAMWords: 2e9}},
	}

	for _, wl := range workloads {
		fmt.Printf("%s:\n", wl.name)
		// Sweep the measured settings and build candidates: identical
		// work at every setting.
		var cands []core.Candidate
		for _, cs := range dvfs.CalibrationSettings() {
			s := cs.Setting
			exec := dev.Execute(tegra.Workload{Profile: wl.prof, Occupancy: 0.95}, s)
			meas, err := meter.Measure(exec.PowerAt, exec.Time)
			if err != nil {
				log.Fatal(err)
			}
			cands = append(cands, core.Candidate{
				Setting: s, Profile: wl.prof, Time: exec.Time, MeasuredEnergy: meas.Energy,
			})
		}
		mi := cal.Model.PickModelMinEnergy(cands)
		oi := core.PickTimeOracle(cands)
		bi := core.PickMeasuredMin(cands)
		report := func(tag string, i int) {
			c := cands[i]
			fmt.Printf("  %-22s %v: %.3f s, %.2f J measured\n", tag, c.Setting, c.Time, c.MeasuredEnergy)
		}
		report("model pick:", mi)
		report("race-to-halt pick:", oi)
		report("measured minimum:", bi)
		lost := func(i int) float64 {
			return float64(100 * (cands[i].MeasuredEnergy - cands[bi].MeasuredEnergy) / cands[bi].MeasuredEnergy)
		}
		fmt.Printf("  energy lost: model %.1f%%, race-to-halt %.1f%%\n\n", lost(mi), lost(oi))
	}
}
