module dvfsroofline

go 1.22
