// Package repro benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// benchmark runs one experiment pipeline end to end and reports, through
// b.ReportMetric, the headline quantity of the corresponding artefact so
// that `go test -bench=.` doubles as the reproduction harness:
//
//	BenchmarkTableI           calibration + NNLS fit (ε table)
//	BenchmarkCrossValidation  §II-D holdout and 16-fold error
//	BenchmarkTableII          autotuning, model vs time oracle
//	BenchmarkTableIII         counter derivation (Table III semantics)
//	BenchmarkTableIV          FMM tree/list construction for F inputs
//	BenchmarkFigure4          FMM per-phase profile shape
//	BenchmarkFigure5          FMM predicted-vs-measured energy
//	BenchmarkFigure6          energy-by-type breakdown
//	BenchmarkFigure7          computation/data/constant split
//
// plus the DESIGN.md §6 ablations (dense vs FFT M2L, NNLS vs plain LS,
// PowerMon rate, and the Q sweep).
package repro

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/fmm2d"
	"dvfsroofline/internal/linalg"
	"dvfsroofline/internal/microbench"
	"dvfsroofline/internal/nnls"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// benchCfg keeps the benchmark harness deterministic.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 42, BenchTargetTime: 0.1}
}

// calibrated caches one calibration per benchmark binary run.
var calibrated *experiments.Calibration
var calibratedDev *tegra.Device

func getCalibration(b *testing.B) (*tegra.Device, *experiments.Calibration) {
	b.Helper()
	if calibrated == nil {
		calibratedDev = tegra.NewDevice()
		cal, err := experiments.Calibrate(context.Background(), calibratedDev, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		calibrated = cal
	}
	return calibratedDev, calibrated
}

// BenchmarkTableI regenerates Table I: the full 1856-sample calibration
// and NNLS fit. Reported metric: mean holdout error (%), the paper's
// first validation number.
func BenchmarkTableI(b *testing.B) {
	dev := tegra.NewDevice()
	var cal *experiments.Calibration
	var err error
	for i := 0; i < b.N; i++ {
		cal, err = experiments.Calibrate(context.Background(), dev, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(cal.TableI()) != 16 {
		b.Fatal("Table I must have 16 rows")
	}
	b.ReportMetric(cal.Holdout.Percent().Mean, "holdout-%err")
	b.ReportMetric(float64(cal.Model.DPpJ), "DP-pJ/V2")
}

// BenchmarkCalibrateParallel measures the full 1856-sample calibration
// campaign under the pipeline worker pool, serial vs fan-out. Both
// variants produce byte-identical samples (per-sample seeded meters),
// so the comparison is pure scheduling overhead vs speedup.
func BenchmarkCalibrateParallel(b *testing.B) {
	dev := tegra.NewDevice()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Calibrate(context.Background(), dev, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossValidation regenerates the §II-D numbers on a fixed
// sample set. Reported: 16-fold mean error (%).
func BenchmarkCrossValidation(b *testing.B) {
	_, cal := getCalibration(b)
	groups := make([]int, len(cal.Samples))
	per := len(cal.Samples) / 16
	for i := range groups {
		groups[i] = i / per
	}
	var res core.CVResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = core.CrossValidateGrouped(cal.Samples, groups)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Percent().Mean, "16fold-%err")
}

// BenchmarkTableII regenerates Table II. Reported: the time oracle's
// mean energy loss on the single-precision family (%) — the paper's
// headline 18.52%.
func BenchmarkTableII(b *testing.B) {
	dev, cal := getCalibration(b)
	var rows []core.TableIIRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Autotune(context.Background(), dev, cal.Model, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Oracle.LostPercent().Mean, "SP-oracle-loss-%")
	b.ReportMetric(float64(rows[0].Model.Mispredictions), "SP-model-misses")
}

// BenchmarkTableIII exercises the Table III counter semantics: emitting
// events for a profile and deriving the profile back.
func BenchmarkTableIII(b *testing.B) {
	p := counters.Profile{
		DPFMA: 1e9, DPAdd: 4e8, DPMul: 6e8, Int: 3e9,
		SharedWords: 2e9, L1Words: 1e8, L2Words: 4e8, DRAMWords: 3e8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := counters.Derive(counters.Emit(p))
		if err != nil {
			b.Fatal(err)
		}
		if q.Int != p.Int {
			b.Fatal("round trip lost counts")
		}
	}
}

// BenchmarkTableIV builds the octree and interaction lists for a scaled
// Table IV input. Reported: leaves for the F7-shaped input.
func BenchmarkTableIV(b *testing.B) {
	pts := fmm.GeneratePoints(fmm.Uniform, 65536, 42)
	var tree *fmm.Tree
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err = fmm.BuildTree(pts, 128, 20)
		if err != nil {
			b.Fatal(err)
		}
		tree.BuildLists()
	}
	b.ReportMetric(float64(tree.NumLeaves()), "leaves")
}

// BenchmarkFigure4 counts a full FMM profile (scaled F8 input).
// Reported: the integer fraction of instructions (paper: ~0.60).
func BenchmarkFigure4(b *testing.B) {
	var run *experiments.FMMRun
	var err error
	for i := 0; i < b.N; i++ {
		run, err = experiments.RunFMMInput(experiments.FMMInput{ID: "F8s", N: 16384, Q: 64}, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.TotalProfile().IntegerFraction(), "int-frac")
	b.ReportMetric(run.TotalProfile().DRAMFraction(), "dram-frac")
}

// BenchmarkFigure5 runs one full predicted-vs-measured validation case.
// Reported: the relative error (paper mean: 6.17%).
func BenchmarkFigure5(b *testing.B) {
	dev, cal := getCalibration(b)
	run, err := experiments.RunFMMInput(experiments.FMMInput{ID: "F8s", N: 16384, Q: 64}, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	meter := powermon.MustMeter(powermon.DefaultConfig(), 5)
	var c experiments.FMMCase
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err = experiments.RunFMMCase(dev, meter, cal.Model, run, "S1", dvfs.MaxSetting())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.RelErr*100, "rel-%err")
}

// BenchmarkFigure6 computes the energy-by-type breakdown. Reported: the
// integer share of computation energy (paper: ~23%).
func BenchmarkFigure6(b *testing.B) {
	dev, cal := getCalibration(b)
	run, err := experiments.RunFMMInput(experiments.FMMInput{ID: "F8s", N: 16384, Q: 64}, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	s := dvfs.MaxSetting()
	var parts core.Parts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := run.Schedule(dev, s)
		parts = cal.Model.PredictParts(run.TotalProfile(), s, sched.Duration())
	}
	b.ReportMetric(100*float64(parts.Int)/float64(parts.Compute()), "int-%of-compute-E")
	b.ReportMetric(100*float64(parts.DRAM)/float64(parts.Data()), "dram-%of-data-E")
}

// BenchmarkFigure7 computes the computation/data/constant split for the
// FMM and the microbenchmark comparison point. Reported: the constant
// share for both (paper: 0.75–0.95 vs ~0.30).
func BenchmarkFigure7(b *testing.B) {
	dev, cal := getCalibration(b)
	run, err := experiments.RunFMMInput(experiments.FMMInput{ID: "F8s", N: 16384, Q: 64}, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	meter := powermon.MustMeter(powermon.DefaultConfig(), 7)
	var cf, mb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunFMMCase(dev, meter, cal.Model, run, "S1", dvfs.MaxSetting())
		if err != nil {
			b.Fatal(err)
		}
		cf = c.ConstantFraction()
		mb, err = experiments.MicrobenchConstantFraction(dev, cal.Model, benchCfg(), dvfs.MaxSetting())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cf, "fmm-const-frac")
	b.ReportMetric(mb, "microbench-const-frac")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkM2LDense and BenchmarkM2LFFT compare the two V-list
// translation schemes on the same problem.
func BenchmarkM2LDense(b *testing.B) {
	benchM2L(b, false)
}

func BenchmarkM2LFFT(b *testing.B) {
	benchM2L(b, true)
}

func benchM2L(b *testing.B, useFFT bool) {
	pts := fmm.GeneratePoints(fmm.Uniform, 16384, 42)
	dens := fmm.GenerateDensities(16384, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmm.Evaluate(pts, dens, fmm.Options{Q: 64, UseFFTM2L: useFFT}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNLSvsLS shows why the paper fits with NNLS: under noise an
// unconstrained least-squares fit of Eq. 9 produces negative (unphysical)
// energy coefficients. Reported: negative coefficients under plain LS.
func BenchmarkNNLSvsLS(b *testing.B) {
	_, cal := getCalibration(b)
	// Build the design matrix once from the calibration samples.
	rows := len(cal.Samples)
	a := linalg.NewMatrix(rows, 9)
	y := make([]units.Joule, rows)
	for i, s := range cal.Samples {
		vp := float64(s.Setting.Core.Volts())
		vm := float64(s.Setting.Mem.Volts())
		p := s.Profile
		r := a.Row(i)
		r[0] = p.SP * vp * vp * 1e-12
		r[1] = (p.DPFMA + p.DPAdd + p.DPMul) * vp * vp * 1e-12
		r[2] = p.Int * vp * vp * 1e-12
		r[3] = (p.SharedWords + p.L1Words) * vp * vp * 1e-12
		r[4] = p.L2Words * vp * vp * 1e-12
		r[5] = p.DRAMWords * vm * vm * 1e-12
		r[6] = vp * float64(s.Time)
		r[7] = vm * float64(s.Time)
		r[8] = float64(s.Time)
		y[i] = s.Energy
	}
	yRaw := make([]float64, rows)
	for i := range y {
		yRaw[i] = float64(y[i])
	}
	var negLS, negNNLS int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls, err := linalg.SolveLS(a, yRaw)
		if err != nil {
			b.Fatal(err)
		}
		nn, err := nnls.Solve(a, y, 0)
		if err != nil {
			b.Fatal(err)
		}
		negLS, negNNLS = 0, 0
		for j := range ls {
			if ls[j] < 0 {
				negLS++
			}
			if nn.X[j] < 0 {
				negNNLS++
			}
		}
	}
	b.ReportMetric(float64(negLS), "LS-negative-coeffs")
	b.ReportMetric(float64(negNNLS), "NNLS-negative-coeffs")
}

// BenchmarkPowermonRate quantifies energy-integration error versus the
// meter's sampling rate (ablation of the 1024 Hz design point).
func BenchmarkPowermonRate(b *testing.B) {
	dev := tegra.NewDevice()
	w := tegra.Workload{Profile: counters.Profile{SP: 2e10, DRAMWords: 2e8}, Occupancy: 0.9}
	exec := dev.Execute(w, dvfs.MaxSetting())
	for _, rate := range []units.Hertz{32, 128, 1024} {
		rate := rate
		b.Run(benchName(rate), func(b *testing.B) {
			m := powermon.MustMeter(powermon.Config{SampleRate: rate}, 11)
			var rel float64
			for i := 0; i < b.N; i++ {
				meas, err := m.Measure(exec.PowerAt, exec.Time)
				if err != nil {
					b.Fatal(err)
				}
				rel = float64((meas.Energy - exec.TrueEnergy()) / exec.TrueEnergy())
				if rel < 0 {
					rel = -rel
				}
			}
			b.ReportMetric(rel*100, "integration-%err")
		})
	}
}

func benchName(rate units.Hertz) string {
	switch rate {
	case 32:
		return "32Hz"
	case 128:
		return "128Hz"
	default:
		return "1024Hz"
	}
}

// BenchmarkQSweep regenerates the paper's §III-B claim: the Q parameter
// shifts work between the compute-bound U phase and the bandwidth-bound
// V phase. Reported per Q: the U-phase share of instructions.
func BenchmarkQSweep(b *testing.B) {
	pts := fmm.GeneratePoints(fmm.Uniform, 32768, 42)
	dens := fmm.GenerateDensities(32768, 43)
	for _, q := range []int{32, 128, 512} {
		q := q
		b.Run(benchQ(q), func(b *testing.B) {
			var res *fmm.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = fmm.Evaluate(pts, dens, fmm.Options{Q: q, UseFFTM2L: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			uShare := res.Profiles[fmm.PhaseU].Instructions() /
				res.Profiles.Total().Instructions()
			b.ReportMetric(uShare, "U-instr-share")
		})
	}
}

func benchQ(q int) string {
	switch q {
	case 32:
		return "Q32"
	case 128:
		return "Q128"
	default:
		return "Q512"
	}
}

// BenchmarkMicrobenchSuite measures the raw cost of one full suite pass
// at a single setting — the unit of the calibration campaign.
func BenchmarkMicrobenchSuite(b *testing.B) {
	dev := tegra.NewDevice()
	r := &microbench.Runner{
		Device:     dev,
		Seed:       1,
		TargetTime: 0.1,
	}
	suite := microbench.Suite()
	settings := []dvfs.Setting{dvfs.MaxSetting()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunSuite(suite, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMM2D runs the paper's §III-A quadtree variant on a
// non-uniform disk, dense vs FFT M2L.
func BenchmarkFMM2D(b *testing.B) {
	pts := fmm2d.GeneratePoints(fmm2d.Disk, 20000, 42)
	dens := fmm2d.GenerateDensities(20000, 43)
	for _, cfg := range []struct {
		name string
		fft  bool
	}{{"Dense", false}, {"FFT", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fmm2d.Evaluate(pts, dens, fmm2d.Options{Q: 40, UseFFTM2L: cfg.fft}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGradients measures the incremental cost of force evaluation
// over potentials alone.
func BenchmarkGradients(b *testing.B) {
	pts := fmm.GeneratePoints(fmm.Plummer, 16384, 42)
	dens := fmm.GenerateDensities(16384, 43)
	b.Run("PotentialOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fmm.Evaluate(pts, dens, fmm.Options{Q: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WithForces", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := fmm.EvaluateGrad(pts, dens, fmm.Options{Q: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoofline evaluates the energy-roofline curves (refs [2,3]).
func BenchmarkRoofline(b *testing.B) {
	_, cal := getCalibration(b)
	s := dvfs.MaxSetting()
	mach := core.MachineFor(tegra.DPPerCycle, tegra.DRAMWordsPerCycle, s)
	intensities := make([]units.OpsPerWord, 64)
	x := units.OpsPerWord(0.0625)
	for i := range intensities {
		intensities[i] = x
		x *= 1.2
	}
	b.ResetTimer()
	var pts []core.RooflinePoint
	for i := 0; i < b.N; i++ {
		pts = cal.Model.Roofline(core.ClassDP, mach, s, intensities)
	}
	b.ReportMetric(float64(pts[len(pts)-1].OpsPerJoule)/1e9, "peak-Gops/J")
}

// BenchmarkFleetPredict measures the cost of one fleet predict request
// end to end — HTTP routing, consistent-hash device selection, model
// evaluation and JSON encoding — as the fleet grows from the degenerate
// single device to 16 heterogeneous devices. Each device gets its own
// synthetic calibration at build time (outside the timed loop); the
// request mix rotates across distinct workloads so the hash ring
// actually spreads traffic.
func BenchmarkFleetPredict(b *testing.B) {
	bodies := make([][]byte, 8)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(
			`{"profile": {"dp_fma": %g, "int": 5e8, "dram_words": 2e8}, "setting_id": "S1", "time_s": 0.5}`,
			1e9+1e8*float64(i)))
	}
	for _, devices := range []int{1, 4, 16} {
		devices := devices
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			fc := fleet.FleetConfig{Seed: 42}
			for i := 0; i < devices; i++ {
				fc.Devices = append(fc.Devices, fleet.Spec{
					ID: fmt.Sprintf("dev-%02d", i),
					Params: fleet.ParamsJSON{
						SPpJ:  units.PicoJoulePerOpPerVoltSq(27.33 + 0.5*float64(i)),
						MiscW: units.Watt(0.15 + 0.01*float64(i)),
					},
				})
			}
			reg, err := fleet.Build(fc, benchCfg(), nil, fleet.NodeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			h := serve.NewFleet(reg, serve.Options{}).Handler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/fleet/predict", bytes.NewReader(bodies[i%len(bodies)]))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("fleet predict = %d: %s", w.Code, w.Body)
				}
			}
		})
	}
}

// BenchmarkFleetMembershipChurn measures fleet predict throughput while
// the membership churns underneath it: a background churner adds a
// calibrated device and drains it back out, over and over, forcing an
// epoch swap (ring rebuild + snapshot publish) per lap. The reported
// ns/op is the predict path's cost under that churn — the immutable-view
// design means readers never block on the membership lock, so this
// should stay within noise of BenchmarkFleetPredict at the same fleet
// size.
func BenchmarkFleetMembershipChurn(b *testing.B) {
	bodies := make([][]byte, 8)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(
			`{"profile": {"dp_fma": %g, "int": 5e8, "dram_words": 2e8}, "setting_id": "S1", "time_s": 0.5}`,
			1e9+1e8*float64(i)))
	}
	fc := fleet.FleetConfig{Seed: 42}
	for i := 0; i < 4; i++ {
		fc.Devices = append(fc.Devices, fleet.Spec{
			ID: fmt.Sprintf("dev-%02d", i),
			Params: fleet.ParamsJSON{
				SPpJ:  units.PicoJoulePerOpPerVoltSq(27.33 + 0.5*float64(i)),
				MiscW: units.Watt(0.15 + 0.01*float64(i)),
			},
		})
	}
	reg, err := fleet.Build(fc, benchCfg(), nil, fleet.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	h := serve.NewFleet(reg, serve.Options{}).Handler()

	// The churner re-uses one calibration: building a node is cheap, the
	// campaign is not, and the epoch swap under test doesn't care.
	adm := fleet.Admin{FleetSeed: fleet.ResolveSeed(fc, benchCfg()), Base: benchCfg()}
	spec := fleet.Spec{ID: "churn-0"}
	cal, err := adm.Calibrate(spec)
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := adm.BuildNode(spec)
			if err != nil {
				b.Error(err)
				return
			}
			n.SetCalibration(cal)
			if err := reg.Add(n, fleet.StateActive); err != nil {
				b.Error(err)
				return
			}
			if _, err := reg.Drain(context.Background(), spec.ID); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/fleet/predict", bytes.NewReader(bodies[i%len(bodies)]))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		// Requests racing a drain may land 503 between the ring swap and
		// the next route; anything else is a bug.
		if w.Code != http.StatusOK && w.Code != http.StatusServiceUnavailable {
			b.Fatalf("fleet predict under churn = %d: %s", w.Code, w.Body)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkM2LBatched completes the M2L ablation: per-pair matvec vs
// offset-batched GEMM vs FFT (see BenchmarkM2LDense / BenchmarkM2LFFT).
func BenchmarkM2LBatched(b *testing.B) {
	pts := fmm.GeneratePoints(fmm.Uniform, 16384, 42)
	dens := fmm.GenerateDensities(16384, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmm.Evaluate(pts, dens, fmm.Options{Q: 64, UseBatchedM2L: true}); err != nil {
			b.Fatal(err)
		}
	}
}
